//! Forward-only program projection — the serving-side lowering.
//!
//! Training compiles one fused instruction stream per actor containing
//! the whole step: forward tasks, backward tasks, gradient
//! accumulation, cross-actor gradient reduces, and (after the trainer
//! appends them) optimizer updates. Inference needs none of that: a
//! serving step is the *forward half* of the training step, run over
//! the same pipeline placement with the same parameters.
//!
//! [`forward_project`] extracts exactly that half. It is a strict
//! *projection* of the compiled program — it never builds new compute,
//! it only drops instructions — so the forward jaxprs, buffer ids, and
//! placement of the surviving tasks are byte-for-byte the ones the
//! training step would execute. That is what makes the serving parity
//! gate checkable: same parameters + same microbatch data ⇒ the served
//! outputs are bitwise-identical to the pre-update outputs of a
//! training step (`docs/serving.md`).
//!
//! What survives, per actor stream:
//!
//! * `Run` instructions labelled [`TaskLabel::Fwd`] — the per-stage,
//!   per-microbatch forward tasks. Backward halves, gradient
//!   accumulation (`AccumGrad`), cotangent seeds/sums (`CotangentSum`),
//!   shared-weight reduces (`GradReduce`), and optimizer `Update`s are
//!   dropped.
//! * `Send`/`Recv` pairs whose payload feeds a surviving forward task
//!   on the receiving actor — the §4.2 activation traffic. Cotangent
//!   and gradient traffic (payloads feeding only dropped tasks) and
//!   post-update shared-weight re-broadcasts (receives with no later
//!   forward use) are dropped *pairwise*: because the unroller
//!   deduplicates sends per `(buffer, destination)`, a wire id is
//!   unique within an actor pair, so filtering both sides by the same
//!   per-payload verdict preserves the matching-order discipline.
//! * Placements of parameters and microbatch data that a surviving
//!   task reads. Optimizer-state placements are dropped — a serving
//!   runtime never places moments.
//! * [`FetchRole::Output`] fetches (the model outputs). Gradient
//!   fetches are dropped.
//!
//! Existing `Free`s are discarded rather than kept: the caller re-runs
//! [`crate::insert_frees`] on the projected program, which frees every
//! residual at — or immediately after — its defining forward task,
//! because nothing downstream reads it any more. That is the
//! "activation retention stripped" property: serving memory is the
//! forward working set, not the training residual set.
//!
//! The projection runs on the *pipeline-shaped* program, before
//! [`crate::shard_program`] / [`crate::replicate_program`]: tensor
//! parallelism is applied to the projected forward program by the same
//! sharding pass training uses, so the sharded forward compute stays
//! identical too.

use std::collections::{HashMap, HashSet};

use crate::program::{BufferId, FetchRole, Instr, JaxprId, MpmdProgram, TaskLabel};
use crate::unroll::CompileError;

/// Projects a compiled training program onto its forward half.
///
/// See the module docs for the exact projection rules. The input must
/// be a pipeline-shaped compiler output: not yet sharded or replicated
/// (`tp`/`dp` meta absent) and not yet re-placed by a rebalance (no
/// `Copy`/`Collective` instructions). Programs that already carry
/// `Free`s (e.g. a fully-finished training step) are accepted; the
/// frees are discarded and the caller re-inserts forward-only ones.
///
/// # Errors
///
/// Returns [`CompileError::Mismatch`] when the program is already
/// sharded, replicated, or re-placed.
pub fn forward_project(program: &MpmdProgram) -> Result<MpmdProgram, CompileError> {
    if program.tp.is_some() || program.dp.is_some() {
        return Err(CompileError::Mismatch(
            "forward_project runs before shard_program/replicate_program: \
             project the pipeline program, then shard the projection"
                .into(),
        ));
    }
    if program
        .actors
        .iter()
        .flatten()
        .any(|i| matches!(i, Instr::Copy { .. } | Instr::Collective { .. }))
    {
        return Err(CompileError::Mismatch(
            "forward_project expects a compiler-output program \
             (no Copy/Collective instructions)"
                .into(),
        ));
    }

    let n = program.n_actors();

    // Pass 1 — per actor, the positions at which each buffer feeds a
    // surviving forward task (Run inputs only: the unroller never
    // relays a received activation onward, so forward uses are the
    // complete keep-criterion for received payloads).
    let mut fwd_use_at: Vec<HashMap<BufferId, Vec<usize>>> = vec![HashMap::new(); n];
    for (a, stream) in program.actors.iter().enumerate() {
        for (i, instr) in stream.iter().enumerate() {
            if let Instr::Run { inputs, label, .. } = instr {
                if matches!(label, TaskLabel::Fwd { .. }) {
                    for b in inputs {
                        fwd_use_at[a].entry(*b).or_default().push(i);
                    }
                }
            }
        }
    }

    // Pass 2 — per-payload verdicts for the wire traffic, decided on
    // the receiving side: a receive survives iff its local buffer feeds
    // a surviving forward task *later in the stream* (a post-update
    // re-broadcast writes a parameter buffer whose forward uses all
    // precede it — dropped). Keyed by (sender, receiver, wire id) so
    // the sending side applies the identical verdict.
    let mut keep_wire: HashSet<(usize, usize, BufferId)> = HashSet::new();
    for (b, stream) in program.actors.iter().enumerate() {
        for (i, instr) in stream.iter().enumerate() {
            if let Instr::Recv { buf, src, from, .. } = instr {
                let used_later = fwd_use_at[b]
                    .get(buf)
                    .is_some_and(|uses| uses.iter().any(|&u| u > i));
                if used_later {
                    keep_wire.insert((*from, b, *src));
                }
            }
        }
    }

    // Pass 3 — project the streams.
    let mut out = MpmdProgram {
        actors: vec![Vec::new(); n],
        ..MpmdProgram::default()
    };
    let mut jaxpr_map: HashMap<JaxprId, JaxprId> = HashMap::new();
    for (a, stream) in program.actors.iter().enumerate() {
        for instr in stream {
            match instr {
                Instr::Run {
                    jaxpr,
                    inputs,
                    outputs,
                    label,
                } if matches!(label, TaskLabel::Fwd { .. }) => {
                    // Compact the jaxpr table to the forward entries so
                    // downstream passes (sharding) never touch backward
                    // graphs.
                    let new_id = *jaxpr_map.entry(*jaxpr).or_insert_with(|| {
                        out.jaxprs.push(program.jaxprs[jaxpr.0 as usize].clone());
                        JaxprId(out.jaxprs.len() as u32 - 1)
                    });
                    out.actors[a].push(Instr::Run {
                        jaxpr: new_id,
                        inputs: inputs.clone(),
                        outputs: outputs.clone(),
                        label: *label,
                    });
                }
                Instr::Run { .. } => {}
                Instr::Send { buf, to } => {
                    if keep_wire.contains(&(a, *to, *buf)) {
                        out.actors[a].push(instr.clone());
                    }
                }
                Instr::Recv { src, from, .. } => {
                    if keep_wire.contains(&(*from, a, *src)) {
                        out.actors[a].push(instr.clone());
                    }
                }
                // The caller re-runs insert_frees on the projection.
                Instr::Free { .. } => {}
                Instr::Copy { .. } | Instr::Collective { .. } => unreachable!("checked above"),
            }
        }
    }

    // Placements: parameters and data a surviving task actually reads,
    // on the actor that reads them. Optimizer state never survives.
    out.placements = program
        .placements
        .iter()
        .filter(|p| {
            !matches!(p.source, crate::program::InputSource::State { .. })
                && fwd_use_at[p.actor].contains_key(&p.buf)
        })
        .cloned()
        .collect();

    // Fetches: model outputs only.
    out.fetches = program
        .fetches
        .iter()
        .filter(|f| matches!(f.role, FetchRole::Output { .. }))
        .cloned()
        .collect();

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::pipeline_model;
    use crate::unroll::{check_send_recv_order, insert_frees, unroll_loop, UnrollOptions};
    use crate::verify::verify_program;
    use raxpp_ir::TraceCtx;
    use raxpp_sched::gpipe;

    /// 2-stage MLP chain traced over the IR, like the quickstart model.
    fn two_stage_loop() -> crate::unroll::CompiledLoop {
        let ctx = TraceCtx::new();
        let w1 = ctx.input([4, 8]);
        let w2 = ctx.input([8, 2]);
        let x = ctx.input([3, 4]);
        let h = ctx.pipeline_yield(&x.matmul(&w1).unwrap().tanh());
        let y = h.matmul(&w2).unwrap();
        let loss = y.mul(&y).unwrap().sum().scale(0.5);
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let model = pipeline_model(&jaxpr, 2).unwrap();
        let schedule = gpipe(2, 3).unwrap();
        unroll_loop(&model, &schedule, UnrollOptions::default()).unwrap()
    }

    #[test]
    fn projection_keeps_only_forward_tasks() {
        let compiled = two_stage_loop();
        let fwd = forward_project(&compiled.program).unwrap();
        assert_eq!(
            fwd.count_runs(|l| matches!(l, TaskLabel::Fwd { .. })),
            compiled
                .program
                .count_runs(|l| matches!(l, TaskLabel::Fwd { .. })),
            "every forward task survives"
        );
        assert_eq!(
            fwd.count_runs(|l| !matches!(l, TaskLabel::Fwd { .. })),
            0,
            "no non-forward task survives"
        );
        assert!(
            fwd.fetches
                .iter()
                .all(|f| matches!(f.role, FetchRole::Output { .. })),
            "gradient fetches dropped"
        );
        assert!(
            !fwd.fetches.is_empty(),
            "model outputs still fetched: {fwd:?}"
        );
    }

    #[test]
    fn projection_preserves_matching_order_and_verifies() {
        let compiled = two_stage_loop();
        let mut fwd = forward_project(&compiled.program).unwrap();
        check_send_recv_order(&fwd).expect("projected wire traffic stays matched");
        insert_frees(&mut fwd);
        verify_program(&fwd).expect("projected program verifies");
    }

    #[test]
    fn projection_drops_backward_wire_traffic() {
        let compiled = two_stage_loop();
        let fwd = forward_project(&compiled.program).unwrap();
        let count = |p: &MpmdProgram, pred: fn(&Instr) -> bool| {
            p.actors.iter().flatten().filter(|i| pred(i)).count()
        };
        let sends_before = count(&compiled.program, |i| matches!(i, Instr::Send { .. }));
        let sends_after = count(&fwd, |i| matches!(i, Instr::Send { .. }));
        // 3 microbatches × 1 stage boundary forward, plus 3 cotangent
        // returns backward: the projection halves the wire traffic.
        assert_eq!(sends_after, 3, "one activation send per microbatch");
        assert!(sends_after < sends_before);
    }

    #[test]
    fn projection_rejects_sharded_programs() {
        let compiled = two_stage_loop();
        let mut p = compiled.program.clone();
        p.tp = Some(crate::program::TpMeta {
            degree: 2,
            replicated: Vec::new(),
            disjoint_reduce: true,
        });
        assert!(forward_project(&p).is_err());
    }

    #[test]
    fn frees_land_at_last_forward_use() {
        let compiled = two_stage_loop();
        let mut fwd = forward_project(&compiled.program).unwrap();
        insert_frees(&mut fwd);
        // Residual buffers (forward outputs nothing consumes any more)
        // are freed: every non-pinned defined buffer gets exactly one
        // Free in its actor stream.
        let pinned: HashSet<BufferId> = fwd
            .placements
            .iter()
            .map(|p| p.buf)
            .chain(fwd.fetches.iter().map(|f| f.buf))
            .collect();
        for stream in &fwd.actors {
            let mut defined = HashSet::new();
            let mut freed = HashSet::new();
            for instr in stream {
                match instr {
                    Instr::Run { outputs, .. } => defined.extend(outputs.iter().copied()),
                    Instr::Recv { buf, .. } => {
                        defined.insert(*buf);
                    }
                    Instr::Free { buf } => {
                        freed.insert(*buf);
                    }
                    _ => {}
                }
            }
            for b in defined {
                assert_eq!(
                    freed.contains(&b),
                    !pinned.contains(&b),
                    "buffer {b} free/pin mismatch"
                );
            }
        }
    }
}
