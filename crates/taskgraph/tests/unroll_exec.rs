//! End-to-end tests of the compiler: unroll pipelines under several
//! schedules, execute the resulting MPMD program with a sequential
//! reference executor, and compare gradients and losses against
//! whole-graph autodiff.

use std::collections::{HashMap, VecDeque};

use raxpp_ir::{eval, value_and_grad, Jaxpr, Tensor, TraceCtx};
use raxpp_mesh::Mesh;
use raxpp_sched::{gpipe, interleaved_1f1b, one_f1b, Schedule};
use raxpp_taskgraph::{
    check_send_recv_order, insert_frees, pipeline_model, shard_program, unroll_loop,
    CollectiveKind, CompiledLoop, FetchRole, InputSource, Instr, MpmdProgram, TaskLabel,
    UnrollOptions,
};

/// Sequential reference executor for MPMD programs: runs each actor's
/// stream in order, delivering sends through per-pair FIFO queues. Panics
/// on deadlock, shape errors, or out-of-order receives.
struct SeqExec {
    stores: Vec<HashMap<u32, Tensor>>,
    queues: HashMap<(usize, usize), VecDeque<(u32, Tensor)>>,
    /// Collective contributions by wire id (wire ids are globally
    /// unique, so one pool serves every group).
    contribs: HashMap<u32, Tensor>,
}

impl SeqExec {
    fn run(program: &MpmdProgram, params: &[Tensor], data: &[Vec<Tensor>]) -> SeqExec {
        let mut exec = SeqExec {
            stores: vec![HashMap::new(); program.n_actors()],
            queues: HashMap::new(),
            contribs: HashMap::new(),
        };
        for p in &program.placements {
            let t = match p.source {
                InputSource::Param(i) => params[i].clone(),
                InputSource::Data { input, mubatch } => data[input][mubatch].clone(),
                InputSource::State { .. } => unreachable!("loop programs have no state"),
            };
            assert_eq!(t.shape(), &p.shape, "placement shape mismatch");
            exec.stores[p.actor].insert(p.buf.0, t);
        }
        let mut cursor = vec![0usize; program.n_actors()];
        loop {
            let mut progressed = false;
            let mut all_done = true;
            for (a, stream) in program.actors.iter().enumerate() {
                while cursor[a] < stream.len() {
                    if !exec.step(program, a, &stream[cursor[a]]) {
                        break;
                    }
                    cursor[a] += 1;
                    progressed = true;
                }
                if cursor[a] < stream.len() {
                    all_done = false;
                }
            }
            if all_done {
                return exec;
            }
            assert!(progressed, "sequential executor deadlocked");
        }
    }

    fn step(&mut self, program: &MpmdProgram, actor: usize, instr: &Instr) -> bool {
        match instr {
            Instr::Run {
                jaxpr,
                inputs,
                outputs,
                label,
            } => {
                let args: Vec<Tensor> = inputs
                    .iter()
                    .map(|b| {
                        self.stores[actor]
                            .get(&b.0)
                            .unwrap_or_else(|| panic!("missing input {b} for {label}"))
                            .clone()
                    })
                    .collect();
                let outs = eval(&program.jaxprs[jaxpr.0 as usize], &args)
                    .unwrap_or_else(|e| panic!("{label} failed: {e}"));
                for (b, t) in outputs.iter().zip(outs) {
                    self.stores[actor].insert(b.0, t);
                }
                true
            }
            Instr::Send { buf, to } => {
                let t = self.stores[actor]
                    .get(&buf.0)
                    .expect("send of missing buffer");
                self.queues
                    .entry((actor, *to))
                    .or_default()
                    .push_back((buf.0, t.clone()));
                true
            }
            Instr::Recv {
                buf,
                src,
                from,
                shape,
            } => {
                let Some(q) = self.queues.get_mut(&(*from, actor)) else {
                    return false;
                };
                let Some((id, t)) = q.pop_front() else {
                    return false;
                };
                assert_eq!(id, src.0, "out-of-order receive");
                let _ = buf;
                assert_eq!(t.shape(), shape, "receive shape mismatch");
                self.stores[actor].insert(buf.0, t);
                true
            }
            Instr::Copy { dst, src } => {
                let t = self.stores[actor]
                    .get(&src.0)
                    .expect("copy of missing buffer")
                    .clone();
                self.stores[actor].insert(dst.0, t);
                true
            }
            Instr::Free { buf } => {
                assert!(
                    self.stores[actor].remove(&buf.0).is_some(),
                    "free of missing buffer {buf}"
                );
                true
            }
            Instr::Collective {
                kind,
                dst,
                src,
                group,
                wires,
                dim,
                ..
            } => {
                // Phase 1: publish our own contribution (idempotent —
                // the step may be retried while peers catch up).
                if !self.contribs.contains_key(&src.0) {
                    let t = self.stores[actor]
                        .get(&src.0)
                        .expect("collective of missing buffer")
                        .clone();
                    self.contribs.insert(src.0, t);
                }
                // Phase 2: wait for every rank, then combine in
                // rank-ascending order exactly like the runtime.
                if !wires.iter().all(|w| self.contribs.contains_key(&w.0)) {
                    return false;
                }
                let parts: Vec<&Tensor> = wires.iter().map(|w| &self.contribs[&w.0]).collect();
                let rank = group.iter().position(|&g| g == actor).unwrap();
                let combined = match kind {
                    CollectiveKind::AllGather => Tensor::concat(&parts, *dim).unwrap(),
                    CollectiveKind::AllReduce | CollectiveKind::ReduceScatter => {
                        let mut acc = parts[0].clone();
                        for p in &parts[1..] {
                            acc = acc.zip(p, |a, b| a + b).unwrap();
                        }
                        if matches!(kind, CollectiveKind::ReduceScatter) {
                            let blk = acc.shape().dim(*dim) / group.len();
                            acc.slice_dim(*dim, rank * blk, blk).unwrap()
                        } else {
                            acc
                        }
                    }
                };
                self.stores[actor].insert(dst.0, combined);
                true
            }
        }
    }

    fn fetch(&self, program: &MpmdProgram) -> (Vec<Tensor>, HashMap<(usize, usize), Tensor>) {
        let mut grads: HashMap<usize, Tensor> = HashMap::new();
        let mut outputs = HashMap::new();
        for f in &program.fetches {
            let t = self.stores[f.actor]
                .get(&f.buf.0)
                .unwrap_or_else(|| panic!("fetch of missing buffer {}", f.buf))
                .clone();
            match f.role {
                FetchRole::Grad(p) => {
                    grads.insert(p, t);
                }
                FetchRole::Output { output, mubatch } => {
                    outputs.insert((output, mubatch), t);
                }
            }
        }
        let n = grads.len();
        let grads = (0..n).map(|p| grads.remove(&p).unwrap()).collect();
        (grads, outputs)
    }
}

/// Traced 2-stage MLP with params first: loss = sum((relu(x@w1)@w2)^2).
fn mlp2(emb: usize) -> (Jaxpr, usize) {
    let ctx = TraceCtx::new();
    let w1 = ctx.input([emb, 2 * emb]);
    let w2 = ctx.input([2 * emb, emb]);
    let x = ctx.input([2, emb]);
    let h = x.matmul(&w1).unwrap().relu();
    let h = ctx.pipeline_yield(&h);
    let y = h.matmul(&w2).unwrap();
    let loss = y.mul(&y).unwrap().sum().scale(0.5);
    (ctx.finish(&[loss]).unwrap(), 2)
}

/// A 4-stage chain of matmul+gelu blocks.
fn chain4(emb: usize) -> (Jaxpr, usize) {
    let ctx = TraceCtx::new();
    let ws: Vec<_> = (0..4).map(|_| ctx.input([emb, emb])).collect();
    let x = ctx.input([2, emb]);
    let mut h = x;
    for (i, w) in ws.iter().enumerate() {
        h = h.matmul(w).unwrap().gelu();
        if i < 3 {
            h = ctx.pipeline_yield(&h);
        }
    }
    let loss = h.mul(&h).unwrap().sum().scale(0.5);
    (ctx.finish(&[loss]).unwrap(), 4)
}

/// Reference gradients: run value_and_grad per microbatch and sum.
fn reference(
    jaxpr: &Jaxpr,
    n_params: usize,
    params: &[Tensor],
    data: &[Vec<Tensor>],
) -> (Vec<Tensor>, Vec<f32>) {
    let wrt: Vec<usize> = (0..n_params).collect();
    let g = value_and_grad(jaxpr, &wrt).unwrap();
    let n_mb = data[0].len();
    let mut grads: Vec<Option<Tensor>> = vec![None; n_params];
    let mut losses = Vec::new();
    for mb in 0..n_mb {
        let mut args = params.to_vec();
        for d in data {
            args.push(d[mb].clone());
        }
        let outs = eval(&g, &args).unwrap();
        losses.push(outs[0].item().unwrap());
        for p in 0..n_params {
            let gp = outs[1 + p].clone();
            grads[p] = Some(match grads[p].take() {
                None => gp,
                Some(acc) => acc.zip(&gp, |a, b| a + b).unwrap(),
            });
        }
    }
    (grads.into_iter().map(Option::unwrap).collect(), losses)
}

fn rand_inputs(
    jaxpr: &Jaxpr,
    n_params: usize,
    n_mb: usize,
    seed: u64,
) -> (Vec<Tensor>, Vec<Vec<Tensor>>) {
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(seed);
    let shapes = jaxpr.in_shapes();
    let params: Vec<Tensor> = shapes[..n_params]
        .iter()
        .map(|s| Tensor::randn(s.clone(), 0.4, &mut rng))
        .collect();
    let data: Vec<Vec<Tensor>> = shapes[n_params..]
        .iter()
        .map(|s| {
            (0..n_mb)
                .map(|_| Tensor::randn(s.clone(), 1.0, &mut rng))
                .collect()
        })
        .collect();
    (params, data)
}

fn compile(
    jaxpr: &Jaxpr,
    n_params: usize,
    schedule: &Schedule,
    opts: UnrollOptions,
) -> CompiledLoop {
    let model = pipeline_model(jaxpr, n_params).unwrap();
    let mut compiled = unroll_loop(&model, schedule, opts).unwrap();
    check_send_recv_order(&compiled.program).expect("send/recv order mismatch");
    insert_frees(&mut compiled.program);
    compiled
}

fn assert_matches_reference(jaxpr: &Jaxpr, n_params: usize, schedule: &Schedule, seed: u64) {
    let compiled = compile(jaxpr, n_params, schedule, UnrollOptions::default());
    let (params, data) = rand_inputs(jaxpr, n_params, schedule.n_mubatches(), seed);
    let exec = SeqExec::run(&compiled.program, &params, &data);
    let (grads, outputs) = exec.fetch(&compiled.program);
    let (ref_grads, ref_losses) = reference(jaxpr, n_params, &params, &data);
    for (p, (g, r)) in grads.iter().zip(&ref_grads).enumerate() {
        assert!(
            g.allclose(r, 1e-4),
            "grad {p} mismatch under {}",
            schedule.name()
        );
    }
    for (mb, &l) in ref_losses.iter().enumerate() {
        let got = outputs[&(0, mb)].item().unwrap();
        assert!(
            (got - l).abs() <= 1e-4 * l.abs().max(1.0),
            "loss mb={mb}: {got} vs {l}"
        );
    }
}

#[test]
fn gpipe_matches_reference() {
    let (jaxpr, n_params) = mlp2(4);
    assert_matches_reference(&jaxpr, n_params, &gpipe(2, 4).unwrap(), 1);
}

#[test]
fn one_f1b_matches_reference() {
    let (jaxpr, n_params) = mlp2(4);
    assert_matches_reference(&jaxpr, n_params, &one_f1b(2, 4).unwrap(), 2);
}

#[test]
fn four_stage_1f1b_matches_reference() {
    let (jaxpr, n_params) = chain4(4);
    assert_matches_reference(&jaxpr, n_params, &one_f1b(4, 8).unwrap(), 3);
}

#[test]
fn interleaved_matches_reference() {
    // 4 stages over 2 actors with circular repeat 2: actor 0 owns stages
    // {0, 2}, actor 1 owns {1, 3}.
    let (jaxpr, n_params) = chain4(4);
    assert_matches_reference(&jaxpr, n_params, &interleaved_1f1b(2, 4, 2).unwrap(), 4);
}

#[test]
fn single_actor_single_stage_matches_reference() {
    let ctx = TraceCtx::new();
    let w = ctx.input([3, 3]);
    let x = ctx.input([2, 3]);
    let y = x.matmul(&w).unwrap().tanh();
    let loss = y.mul(&y).unwrap().sum();
    let jaxpr = ctx.finish(&[loss]).unwrap();
    assert_matches_reference(&jaxpr, 1, &gpipe(1, 3).unwrap(), 5);
}

#[test]
fn skip_connection_crosses_nonadjacent_actors() {
    // Stage 0's activation feeds stage 2 directly — the comm inference
    // must route it across non-adjacent actors (paper contribution 1).
    let ctx = TraceCtx::new();
    let w1 = ctx.input([4, 4]);
    let w2 = ctx.input([4, 4]);
    let w3 = ctx.input([4, 4]);
    let x = ctx.input([2, 4]);
    let h0 = x.matmul(&w1).unwrap().tanh();
    let h0 = ctx.pipeline_yield(&h0);
    let h1 = h0.matmul(&w2).unwrap().tanh();
    let h1 = ctx.pipeline_yield(&h1);
    let h2 = h1.matmul(&w3).unwrap().add(&h0).unwrap(); // skip connection
    let loss = h2.mul(&h2).unwrap().sum().scale(0.5);
    let jaxpr = ctx.finish(&[loss]).unwrap();
    assert_matches_reference(&jaxpr, 3, &one_f1b(3, 4).unwrap(), 6);
}

#[test]
fn shared_weight_commuting_and_naive_agree() {
    // Tied weight used in stages 0 and 1 (paper §3.4).
    let ctx = TraceCtx::new();
    let w = ctx.input([4, 4]);
    let x = ctx.input([2, 4]);
    let h = x.matmul(&w).unwrap().tanh();
    let h = ctx.pipeline_yield(&h);
    let y = h.matmul(&w).unwrap();
    let loss = y.mul(&y).unwrap().sum().scale(0.5);
    let jaxpr = ctx.finish(&[loss]).unwrap();
    let schedule = one_f1b(2, 4).unwrap();

    let commuted = compile(
        &jaxpr,
        1,
        &schedule,
        UnrollOptions {
            loop_commuting: true,
        },
    );
    let naive = compile(
        &jaxpr,
        1,
        &schedule,
        UnrollOptions {
            loop_commuting: false,
        },
    );
    let (params, data) = rand_inputs(&jaxpr, 1, 4, 7);
    let (g1, _) = SeqExec::run(&commuted.program, &params, &data).fetch(&commuted.program);
    let (g2, _) = SeqExec::run(&naive.program, &params, &data).fetch(&naive.program);
    assert!(
        g1[0].allclose(&g2[0], 1e-4),
        "commuted and naive gradients differ"
    );

    let (ref_grads, _) = reference(&jaxpr, 1, &params, &data);
    assert!(g1[0].allclose(&ref_grads[0], 1e-4));

    // Loop commuting's entire point: fewer cross-actor gradient messages.
    let count_sends = |p: &MpmdProgram| {
        p.actors
            .iter()
            .flatten()
            .filter(|i| matches!(i, Instr::Send { .. }))
            .count()
    };
    assert!(
        count_sends(&commuted.program) < count_sends(&naive.program),
        "commuting should reduce sends: {} vs {}",
        count_sends(&commuted.program),
        count_sends(&naive.program)
    );
}

#[test]
fn frees_leave_only_pinned_buffers() {
    let (jaxpr, n_params) = mlp2(4);
    let schedule = one_f1b(2, 4).unwrap();
    let compiled = compile(&jaxpr, n_params, &schedule, UnrollOptions::default());
    let (params, data) = rand_inputs(&jaxpr, n_params, 4, 8);
    let exec = SeqExec::run(&compiled.program, &params, &data);
    let mut pinned: std::collections::HashSet<u32> = std::collections::HashSet::new();
    pinned.extend(compiled.program.placements.iter().map(|p| p.buf.0));
    pinned.extend(compiled.program.fetches.iter().map(|f| f.buf.0));
    for (a, store) in exec.stores.iter().enumerate() {
        for b in store.keys() {
            assert!(pinned.contains(b), "actor {a} leaked buffer b{b}");
        }
    }
}

#[test]
fn fused_program_is_one_dispatch_per_actor() {
    let (jaxpr, n_params) = chain4(4);
    let schedule = one_f1b(4, 8).unwrap();
    let compiled = compile(&jaxpr, n_params, &schedule, UnrollOptions::default());
    // §4.4: all tasks fuse into a single dispatch per actor.
    assert_eq!(compiled.program.num_rpcs(), 4);
    assert!(compiled.program.num_instrs() > 4 * 2 * 8);
}

#[test]
fn tensor_parallel_shards_are_bitwise_identical() {
    // Shard the 4-stage chain over a model axis and check the sequential
    // executor produces byte-for-byte the same gradients and losses as
    // the unsharded program — the tp contract of docs/parallelism.md.
    let (jaxpr, n_params) = chain4(4);
    let schedule = one_f1b(4, 4).unwrap();
    let compiled = compile(&jaxpr, n_params, &schedule, UnrollOptions::default());
    let (params, data) = rand_inputs(&jaxpr, n_params, 4, 11);
    let (base_grads, base_outs) = {
        let e = SeqExec::run(&compiled.program, &params, &data);
        e.fetch(&compiled.program)
    };
    for t in [2, 4] {
        // Re-unroll without frees, shard, then free: mirrors the real
        // compile order (shard before liveness).
        let model = pipeline_model(&jaxpr, n_params).unwrap();
        let unfused = unroll_loop(&model, &schedule, UnrollOptions::default())
            .unwrap()
            .program;
        let mesh = Mesh::new(&[("model", t)]).unwrap();
        let mut sharded = shard_program(&unfused, &mesh, "model").unwrap();
        insert_frees(&mut sharded);
        let n_allgather = sharded
            .actors
            .iter()
            .flatten()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Collective {
                        kind: CollectiveKind::AllGather,
                        ..
                    }
                )
            })
            .count();
        let n_allreduce = sharded
            .actors
            .iter()
            .flatten()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Collective {
                        kind: CollectiveKind::AllReduce,
                        ..
                    }
                )
            })
            .count();
        assert!(n_allgather > 0, "tp={t}: no all-gathers emitted");
        assert!(n_allreduce > 0, "tp={t}: no all-reduces emitted");
        let e = SeqExec::run(&sharded, &params, &data);
        let (grads, outs) = e.fetch(&sharded);
        for (p, (g, b)) in grads.iter().zip(&base_grads).enumerate() {
            assert_eq!(g.data(), b.data(), "tp={t}: grad {p} not bitwise equal");
        }
        for (k, v) in &base_outs {
            assert_eq!(outs[k].data(), v.data(), "tp={t}: output {k:?} differs");
        }
    }
}

#[test]
fn task_counts_match_schedule() {
    let (jaxpr, n_params) = chain4(4);
    let schedule = interleaved_1f1b(2, 4, 2).unwrap();
    let compiled = compile(&jaxpr, n_params, &schedule, UnrollOptions::default());
    let fwd = compiled
        .program
        .count_runs(|l| matches!(l, TaskLabel::Fwd { .. }));
    let bwd = compiled
        .program
        .count_runs(|l| matches!(l, TaskLabel::Bwd { .. }));
    assert_eq!(fwd, 4 * 4); // stages × microbatches
    assert_eq!(bwd, 4 * 4);
}
