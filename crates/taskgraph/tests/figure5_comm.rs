//! Reconstruction of the paper's Figure 5 / §4.2 communication-inference
//! properties on compiled programs:
//!
//! 1. send/receive pairs are emitted immediately after the producing
//!    task, so receives act as *prefetches* — they appear in the
//!    consumer's stream strictly before the consuming task, usually with
//!    unrelated compute in between (the overlap the paper describes for
//!    `f2(3)` running while `b2(2)`'s operand is in flight);
//! 2. per actor pair, send order equals receive order (the property that
//!    avoids NCCL deadlock);
//! 3. a naive "receive right before use" placement would differ — we
//!    count how many receives are hoisted above intervening compute.

use raxpp_ir::{Jaxpr, TraceCtx};
use raxpp_sched::one_f1b;
use raxpp_taskgraph::{
    check_send_recv_order, insert_frees, pipeline_model, unroll_loop, BufferId, Instr, MpmdProgram,
    UnrollOptions,
};

fn four_stage_model() -> (Jaxpr, usize) {
    let ctx = TraceCtx::new();
    let ws: Vec<_> = (0..4).map(|_| ctx.input([6, 6])).collect();
    let x = ctx.input([2, 6]);
    let mut h = x;
    for (i, w) in ws.iter().enumerate() {
        h = h.matmul(w).unwrap().tanh();
        if i < 3 {
            h = ctx.pipeline_yield(&h);
        }
    }
    let loss = h.mul(&h).unwrap().sum();
    (ctx.finish(&[loss]).unwrap(), 4)
}

fn compile() -> MpmdProgram {
    let (jaxpr, n_params) = four_stage_model();
    let model = pipeline_model(&jaxpr, n_params).unwrap();
    let schedule = one_f1b(4, 8).unwrap();
    let mut compiled = unroll_loop(&model, &schedule, UnrollOptions::default()).unwrap();
    insert_frees(&mut compiled.program);
    compiled.program
}

/// For each Recv, how many Run instructions sit between it and the first
/// Run consuming its buffer.
fn prefetch_distances(program: &MpmdProgram) -> Vec<usize> {
    let mut out = Vec::new();
    for stream in &program.actors {
        for (i, instr) in stream.iter().enumerate() {
            let Instr::Recv { buf, .. } = instr else {
                continue;
            };
            let mut runs_between = 0;
            for later in &stream[i + 1..] {
                if let Instr::Run { inputs, .. } = later {
                    if inputs.contains(buf) {
                        out.push(runs_between);
                        break;
                    }
                    runs_between += 1;
                }
            }
        }
    }
    out
}

#[test]
fn receives_are_prefetches_not_blocking_waits() {
    let program = compile();
    let distances = prefetch_distances(&program);
    assert!(!distances.is_empty());
    // At least some receives are hoisted above unrelated compute — the
    // §4.2 overlap property (e.g. a cotangent arriving while the actor
    // still runs forward tasks of other microbatches).
    let hoisted = distances.iter().filter(|&&d| d > 0).count();
    assert!(
        hoisted > 0,
        "no receive overlaps compute; placement is naive: {distances:?}"
    );
}

#[test]
fn send_and_receive_orders_match_per_pair() {
    let program = compile();
    check_send_recv_order(&program).expect("matching-order property (Figure 5) violated");
}

#[test]
fn every_send_has_exactly_one_receive() {
    let program = compile();
    let mut sends: Vec<(usize, usize, BufferId)> = Vec::new();
    let mut recvs: Vec<(usize, usize, BufferId)> = Vec::new();
    for (a, stream) in program.actors.iter().enumerate() {
        for instr in stream {
            match instr {
                Instr::Send { buf, to } => sends.push((a, *to, *buf)),
                Instr::Recv { src, from, .. } => recvs.push((*from, a, *src)),
                _ => {}
            }
        }
    }
    sends.sort();
    recvs.sort();
    assert_eq!(sends, recvs, "sends and receives must pair up exactly");
    // 1F1B over 4 stages, 8 microbatches: 3 boundary crossings each way
    // per microbatch (all actor pairs are adjacent here).
    assert_eq!(sends.len(), 2 * 3 * 8);
}
