//! Kernel-parity suite: the blocked/parallel matmul, batched matmul,
//! and transpose kernels must be **bit-identical** to the seed repo's
//! naive serial kernels on every shape — including edge tiles, unit
//! dimensions, empty tensors, and any thread count. Bit-identity (not
//! `allclose`) is the contract that makes pipelined training
//! reproducible against the single-device reference.

use raxpp_ir::rng::{Rng, SeedableRng, StdRng};
use raxpp_ir::{set_num_threads, Tensor};

/// A tensor with a mix of magnitudes, exact zeros, and negatives —
/// zeros exercise the naive kernel's zero-skip fast path, whose only
/// effect may be `-0.0` vs `0.0` (equal under f32 `==`).
fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let numel: usize = shape.iter().product();
    let data: Vec<f32> = (0..numel)
        .map(|_| match rng.gen_range(0u64..8) {
            0 => 0.0,
            1 => -0.0,
            _ => rng.gen_range(-3.0f32..3.0),
        })
        .collect();
    Tensor::from_vec(shape, data).unwrap()
}

/// Shapes chosen to hit every code path of the blocked kernels: full
/// MRxNR register tiles, ragged edge tiles in both dimensions, unit
/// dims, shapes under and over the parallelization thresholds.
const MATMUL_SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (1, 7, 1),
    (1, 1, 17),
    (4, 16, 16),   // exactly one full register tile per row-panel
    (5, 3, 17),    // ragged in m and n
    (7, 13, 31),   // all-odd
    (8, 32, 64),   // whole tiles only
    (3, 1, 5),     // k = 1: single-term reductions
    (33, 29, 47),  // edge tiles on every boundary
    (128, 64, 96), // multi-panel, above thread-split sizes
    (0, 4, 4),     // empty m
    (4, 0, 4),     // empty k: output must be all zeros
    (4, 4, 0),     // empty n
];

#[test]
fn matmul_blocked_matches_naive_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for &(m, k, n) in MATMUL_SHAPES {
        let a = rand_tensor(&[m, k], &mut rng);
        let b = rand_tensor(&[k, n], &mut rng);
        let want = a.matmul_naive(&b).unwrap();
        for threads in [1, 2, 3, 4, 7] {
            set_num_threads(threads);
            let got = a.matmul(&b).unwrap();
            assert_eq!(got.shape(), want.shape(), "({m},{k},{n}) x{threads}");
            assert_eq!(
                got.data(),
                want.data(),
                "matmul ({m},{k},{n}) diverges at {threads} threads"
            );
        }
    }
    set_num_threads(1);
}

#[test]
fn batch_matmul_blocked_matches_naive_bitwise() {
    let mut rng = StdRng::seed_from_u64(0xB47C4);
    let cases: &[(usize, usize, usize, usize)] = &[
        (1, 1, 1, 1),
        (2, 3, 5, 7),
        (3, 4, 16, 16),
        (5, 7, 13, 11),
        (0, 4, 4, 4), // empty batch
        (4, 0, 3, 3), // empty m inside each batch
        (2, 3, 0, 3), // empty k
        (8, 16, 8, 24),
    ];
    for &(batch, m, k, n) in cases {
        let a = rand_tensor(&[batch, m, k], &mut rng);
        let b = rand_tensor(&[batch, k, n], &mut rng);
        let want = a.batch_matmul_naive(&b).unwrap();
        for threads in [1, 3, 4] {
            set_num_threads(threads);
            let got = a.batch_matmul(&b).unwrap();
            assert_eq!(got.shape(), want.shape());
            assert_eq!(
                got.data(),
                want.data(),
                "batch_matmul ({batch},{m},{k},{n}) diverges at {threads} threads"
            );
        }
    }
    set_num_threads(1);
}

#[test]
fn transpose_blocked_matches_naive_bitwise() {
    let mut rng = StdRng::seed_from_u64(0x7A2A);
    let cases: &[&[usize]] = &[
        &[1, 1],
        &[1, 9],
        &[9, 1],
        &[32, 32], // exactly one tile
        &[33, 31], // ragged tiles
        &[7, 129],
        &[2, 3, 5],    // batched
        &[4, 33, 17],  // batched ragged
        &[0, 3],       // empty
        &[3, 0],       // empty columns
        &[2, 0, 5],    // empty inside batch
        &[6, 512, 96], // above the parallel threshold
    ];
    for &shape in cases {
        let t = rand_tensor(shape, &mut rng);
        let want = t.transpose_naive().unwrap();
        for threads in [1, 2, 5] {
            set_num_threads(threads);
            let got = t.transpose().unwrap();
            assert_eq!(got.shape(), want.shape());
            assert_eq!(
                got.data(),
                want.data(),
                "transpose {shape:?} diverges at {threads} threads"
            );
        }
    }
    set_num_threads(1);
}

/// Double-transpose is the identity, bit-for-bit, regardless of tiling.
#[test]
fn transpose_roundtrip_is_identity() {
    let mut rng = StdRng::seed_from_u64(0x1D);
    set_num_threads(4);
    for &shape in &[[37usize, 53], [64, 64], [1, 200]] {
        let t = rand_tensor(&shape, &mut rng);
        let back = t.transpose().unwrap().transpose().unwrap();
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.data(), t.data());
    }
    set_num_threads(1);
}
