//! Property-style tests for tensor kernels and autodiff, driven by the
//! in-tree deterministic PRNG (the registry-free replacement for the
//! original proptest harness — same properties, fixed case streams).

use raxpp_ir::rng::{Rng, SeedableRng, StdRng};
use raxpp_ir::{eval, grad, optimize, Shape, Tensor, TraceCtx, TracedTensor};

const CASES: u64 = 64;

fn rand_tensor(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
    Tensor::from_vec(shape.to_vec(), data).unwrap()
}

/// (A·B)ᵀ = Bᵀ·Aᵀ
#[test]
fn matmul_transpose_identity() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(1000 + case);
        let a = rand_tensor(&[3, 4], &mut rng);
        let b = rand_tensor(&[4, 2], &mut rng);
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b
            .transpose()
            .unwrap()
            .matmul(&a.transpose().unwrap())
            .unwrap();
        assert!(lhs.allclose(&rhs, 1e-4), "case {case}");
    }
}

/// Matmul distributes over addition.
#[test]
fn matmul_distributes() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(2000 + case);
        let a = rand_tensor(&[2, 3], &mut rng);
        let b = rand_tensor(&[3, 2], &mut rng);
        let c = rand_tensor(&[3, 2], &mut rng);
        let sum_first = a.matmul(&b.zip(&c, |x, y| x + y).unwrap()).unwrap();
        let dist = a
            .matmul(&b)
            .unwrap()
            .zip(&a.matmul(&c).unwrap(), |x, y| x + y)
            .unwrap();
        assert!(sum_first.allclose(&dist, 1e-3), "case {case}");
    }
}

/// Reducing a broadcast tensor scales by the broadcast factor.
#[test]
fn broadcast_then_reduce() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(3000 + case);
        let t = rand_tensor(&[4], &mut rng);
        let b = t.broadcast_to([3, 4]).unwrap();
        let r = b.reduce_sum(&[0], false).unwrap();
        let expected = t.map(|x| 3.0 * x);
        assert!(r.allclose(&expected, 1e-5), "case {case}");
    }
}

/// reshape is a bijection on data.
#[test]
fn reshape_roundtrip() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(4000 + case);
        let t = rand_tensor(&[2, 6], &mut rng);
        let r = t.reshape([3, 4]).unwrap().reshape([2, 6]).unwrap();
        assert_eq!(r.data(), t.data(), "case {case}");
    }
}

/// Analytic gradient of sum((x@w).tanh()) matches finite differences.
#[test]
fn mlp_grad_matches_finite_difference() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(5000 + case);
        let x = rand_tensor(&[2, 3], &mut rng);
        let w = rand_tensor(&[3, 2], &mut rng);
        let ctx = TraceCtx::new();
        let xv = ctx.input([2, 3]);
        let wv = ctx.input([3, 2]);
        let loss = xv.matmul(&wv).unwrap().tanh().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let g = grad(&jaxpr).unwrap();
        let outs = eval(&g, &[x.clone(), w.clone()]).unwrap();

        // Finite differences on w only (cheaper); x is symmetric.
        let h = 1e-2f32;
        let mut fd = vec![0.0f32; w.numel()];
        for i in 0..w.numel() {
            let mut dp = w.data().to_vec();
            dp[i] += h;
            let wp = Tensor::from_vec(w.shape().clone(), dp).unwrap();
            let mut dm = w.data().to_vec();
            dm[i] -= h;
            let wm = Tensor::from_vec(w.shape().clone(), dm).unwrap();
            let fp = eval(&jaxpr, &[x.clone(), wp]).unwrap()[0].item().unwrap();
            let fm = eval(&jaxpr, &[x.clone(), wm]).unwrap()[0].item().unwrap();
            fd[i] = (fp - fm) / (2.0 * h);
        }
        let fd = Tensor::from_vec(w.shape().clone(), fd).unwrap();
        assert!(
            outs[2].allclose(&fd, 5e-2),
            "case {case}: analytic {:?} vs numeric {:?}",
            outs[2].data(),
            fd.data()
        );
    }
}

/// Gradient of a linear function is constant in x.
#[test]
fn linear_grad_is_input_independent() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(6000 + case);
        let x1 = rand_tensor(&[2, 2], &mut rng);
        let x2 = rand_tensor(&[2, 2], &mut rng);
        let w = rand_tensor(&[2, 2], &mut rng);
        let ctx = TraceCtx::new();
        let xv = ctx.input([2, 2]);
        let wv = ctx.input([2, 2]);
        let loss = xv.matmul(&wv).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let g = grad(&jaxpr).unwrap();
        // d/dx (sum x@w) does not depend on x.
        let g1 = eval(&g, &[x1, w.clone()]).unwrap()[1].clone();
        let g2 = eval(&g, &[x2, w]).unwrap()[1].clone();
        assert!(g1.allclose(&g2, 1e-5), "case {case}");
    }
}

/// Optimization (CSE + constant folding + DCE) never changes the
/// value of a randomly composed graph.
#[test]
fn optimize_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(7000 + case);
        let n_ops = rng.gen_range(1usize..12);
        let ops: Vec<u8> = (0..n_ops).map(|_| rng.gen_range(0u8..6)).collect();
        let x0 = rand_tensor(&[2, 2], &mut rng);
        let w0 = rand_tensor(&[2, 2], &mut rng);
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let w = ctx.input([2, 2]);
        let mut vals: Vec<TracedTensor> = vec![x.clone(), w.clone(), ctx.fill([2, 2], 1.5)];
        for (i, op) in ops.iter().enumerate() {
            let a = vals[i % vals.len()].clone();
            let b = vals[(i * 7 + 1) % vals.len()].clone();
            let next = match op {
                0 => a.add(&b).unwrap(),
                1 => a.mul(&b).unwrap(),
                2 => a.matmul(&b).unwrap(),
                3 => a.tanh(),
                4 => a.scale(0.5),
                _ => a.sub(&b).unwrap(),
            };
            vals.push(next);
        }
        let loss = vals
            .last()
            .unwrap()
            .mul(vals.last().unwrap())
            .unwrap()
            .sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let (opt, _) = optimize(&jaxpr).unwrap();
        let a = eval(&jaxpr, &[x0.clone(), w0.clone()]).unwrap();
        let b = eval(&opt, &[x0, w0]).unwrap();
        assert_eq!(a[0].data(), b[0].data(), "case {case}");
        assert!(opt.eqns().len() <= jaxpr.eqns().len(), "case {case}");
    }
}

/// Shape::broadcast_axes returns exactly the axes that differ.
#[test]
fn broadcast_axes_are_consistent() {
    for d0 in 1usize..4 {
        for d1 in 1usize..4 {
            for pick0 in [false, true] {
                for pick1 in [false, true] {
                    let target = Shape::new([d0, d1]);
                    let from = Shape::new([if pick0 { 1 } else { d0 }, if pick1 { 1 } else { d1 }]);
                    let axes = from.broadcast_axes(&target).unwrap();
                    for (i, &want) in [pick0 && d0 > 1, pick1 && d1 > 1].iter().enumerate() {
                        assert_eq!(axes.contains(&i), want, "d0={d0} d1={d1} axis {i}");
                    }
                }
            }
        }
    }
}
