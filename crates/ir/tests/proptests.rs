//! Property-based tests for tensor kernels and autodiff.

use proptest::prelude::*;
use raxpp_ir::{eval, grad, optimize, Shape, Tensor, TraceCtx, TracedTensor};

fn tensor_strategy(shape: Vec<usize>) -> impl Strategy<Value = Tensor> {
    let n: usize = shape.iter().product();
    proptest::collection::vec(-2.0f32..2.0, n)
        .prop_map(move |data| Tensor::from_vec(shape.clone(), data).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (A·B)ᵀ = Bᵀ·Aᵀ
    #[test]
    fn matmul_transpose_identity(
        a in tensor_strategy(vec![3, 4]),
        b in tensor_strategy(vec![4, 2]),
    ) {
        let lhs = a.matmul(&b).unwrap().transpose().unwrap();
        let rhs = b.transpose().unwrap().matmul(&a.transpose().unwrap()).unwrap();
        prop_assert!(lhs.allclose(&rhs, 1e-4));
    }

    /// Matmul distributes over addition.
    #[test]
    fn matmul_distributes(
        a in tensor_strategy(vec![2, 3]),
        b in tensor_strategy(vec![3, 2]),
        c in tensor_strategy(vec![3, 2]),
    ) {
        let sum_first = a.matmul(&b.zip(&c, |x, y| x + y).unwrap()).unwrap();
        let dist = a.matmul(&b).unwrap().zip(&a.matmul(&c).unwrap(), |x, y| x + y).unwrap();
        prop_assert!(sum_first.allclose(&dist, 1e-3));
    }

    /// Reducing a broadcast tensor scales by the broadcast factor.
    #[test]
    fn broadcast_then_reduce(t in tensor_strategy(vec![4])) {
        let b = t.broadcast_to([3, 4]).unwrap();
        let r = b.reduce_sum(&[0], false).unwrap();
        let expected = t.map(|x| 3.0 * x);
        prop_assert!(r.allclose(&expected, 1e-5));
    }

    /// reshape is a bijection on data.
    #[test]
    fn reshape_roundtrip(t in tensor_strategy(vec![2, 6])) {
        let r = t.reshape([3, 4]).unwrap().reshape([2, 6]).unwrap();
        prop_assert_eq!(r.data(), t.data());
    }

    /// Analytic gradient of sum((x@w).tanh()) matches finite differences.
    #[test]
    fn mlp_grad_matches_finite_difference(
        x in tensor_strategy(vec![2, 3]),
        w in tensor_strategy(vec![3, 2]),
    ) {
        let ctx = TraceCtx::new();
        let xv = ctx.input([2, 3]);
        let wv = ctx.input([3, 2]);
        let loss = xv.matmul(&wv).unwrap().tanh().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let g = grad(&jaxpr).unwrap();
        let outs = eval(&g, &[x.clone(), w.clone()]).unwrap();

        // Finite differences on w only (cheaper); x is symmetric.
        let h = 1e-2f32;
        let mut fd = vec![0.0f32; w.numel()];
        for i in 0..w.numel() {
            let mut dp = w.data().to_vec();
            dp[i] += h;
            let wp = Tensor::from_vec(w.shape().clone(), dp).unwrap();
            let mut dm = w.data().to_vec();
            dm[i] -= h;
            let wm = Tensor::from_vec(w.shape().clone(), dm).unwrap();
            let fp = eval(&jaxpr, &[x.clone(), wp]).unwrap()[0].item().unwrap();
            let fm = eval(&jaxpr, &[x.clone(), wm]).unwrap()[0].item().unwrap();
            fd[i] = (fp - fm) / (2.0 * h);
        }
        let fd = Tensor::from_vec(w.shape().clone(), fd).unwrap();
        prop_assert!(
            outs[2].allclose(&fd, 5e-2),
            "analytic {:?} vs numeric {:?}", outs[2].data(), fd.data()
        );
    }

    /// Gradient of a linear function is constant in x.
    #[test]
    fn linear_grad_is_input_independent(
        x1 in tensor_strategy(vec![2, 2]),
        x2 in tensor_strategy(vec![2, 2]),
        w in tensor_strategy(vec![2, 2]),
    ) {
        let ctx = TraceCtx::new();
        let xv = ctx.input([2, 2]);
        let wv = ctx.input([2, 2]);
        let loss = xv.matmul(&wv).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let g = grad(&jaxpr).unwrap();
        // d/dx (sum x@w) does not depend on x.
        let g1 = eval(&g, &[x1, w.clone()]).unwrap()[1].clone();
        let g2 = eval(&g, &[x2, w]).unwrap()[1].clone();
        prop_assert!(g1.allclose(&g2, 1e-5));
    }

    /// Optimization (CSE + constant folding + DCE) never changes the
    /// value of a randomly composed graph.
    #[test]
    fn optimize_preserves_semantics(
        ops in proptest::collection::vec(0u8..6, 1..12),
        x0 in tensor_strategy(vec![2, 2]),
        w0 in tensor_strategy(vec![2, 2]),
    ) {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let w = ctx.input([2, 2]);
        let mut vals: Vec<TracedTensor> = vec![x.clone(), w.clone(), ctx.fill([2, 2], 1.5)];
        for (i, op) in ops.iter().enumerate() {
            let a = vals[i % vals.len()].clone();
            let b = vals[(i * 7 + 1) % vals.len()].clone();
            let next = match op {
                0 => a.add(&b).unwrap(),
                1 => a.mul(&b).unwrap(),
                2 => a.matmul(&b).unwrap(),
                3 => a.tanh(),
                4 => a.scale(0.5),
                _ => a.sub(&b).unwrap(),
            };
            vals.push(next);
        }
        let loss = vals.last().unwrap().mul(vals.last().unwrap()).unwrap().sum();
        let jaxpr = ctx.finish(&[loss]).unwrap();
        let (opt, _) = optimize(&jaxpr).unwrap();
        let a = eval(&jaxpr, &[x0.clone(), w0.clone()]).unwrap();
        let b = eval(&opt, &[x0, w0]).unwrap();
        prop_assert_eq!(a[0].data(), b[0].data());
        prop_assert!(opt.eqns().len() <= jaxpr.eqns().len());
    }

    /// Shape::broadcast_axes returns exactly the axes that differ.
    #[test]
    fn broadcast_axes_are_consistent(
        d0 in 1usize..4, d1 in 1usize..4,
        pick0 in any::<bool>(), pick1 in any::<bool>(),
    ) {
        let target = Shape::new([d0, d1]);
        let from = Shape::new([if pick0 { 1 } else { d0 }, if pick1 { 1 } else { d1 }]);
        let axes = from.broadcast_axes(&target).unwrap();
        for (i, &want) in [pick0 && d0 > 1, pick1 && d1 > 1].iter().enumerate() {
            prop_assert_eq!(axes.contains(&i), want);
        }
    }
}
