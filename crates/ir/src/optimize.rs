//! Graph optimization passes: common-subexpression elimination and
//! constant folding.
//!
//! These run on the per-stage graphs before they are shipped to actors
//! (XLA performs the equivalent simplifications when it compiles each
//! JaxPP task). Both passes preserve semantics exactly — the property
//! tests evaluate optimized and unoptimized graphs side by side.

use std::collections::HashMap;

use crate::error::Result;
use crate::graph::{Eqn, GraphBuilder, Jaxpr, VarId};
use crate::interp::eval_prim;
use crate::prim::Prim;
use crate::tensor::Tensor;

/// A hashable structural key for one equation, used by CSE.
///
/// `Prim` contains `f32` parameters, which are not `Hash`; we key on the
/// display form (deterministic and distinct per parameterization) plus
/// the operand ids.
fn eqn_key(prim: &Prim, inputs: &[VarId]) -> (String, Vec<VarId>) {
    (format!("{prim}"), inputs.to_vec())
}

/// Statistics of one optimization run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OptimizeStats {
    /// Equations removed by common-subexpression elimination.
    pub cse_removed: usize,
    /// Equations replaced by constants.
    pub folded: usize,
    /// Equations removed as dead code afterwards.
    pub dce_removed: usize,
}

/// Runs CSE + constant folding + DCE on `jaxpr`, returning the optimized
/// graph and what was removed.
///
/// Folding is applied to operations whose operands are all [`Prim::Fill`]
/// results (evaluated at compile time into a new `Fill`-equivalent
/// constant only when the result is constant-valued, i.e. every element
/// equal — otherwise the op is left alone, since the IR's only constant
/// form is a splat).
///
/// `pipeline_yield` markers are never eliminated or folded: they carry
/// the stage structure.
///
/// # Errors
///
/// Propagates graph reconstruction errors (none occur for valid input).
pub fn optimize(jaxpr: &Jaxpr) -> Result<(Jaxpr, OptimizeStats)> {
    let mut stats = OptimizeStats::default();
    let mut b = GraphBuilder::new();
    // Map old var -> new var.
    let mut map: HashMap<VarId, VarId> = HashMap::new();
    for &v in jaxpr.invars() {
        map.insert(v, b.input(jaxpr.shape(v).clone()));
    }
    // Structural-value numbering.
    let mut seen: HashMap<(String, Vec<VarId>), VarId> = HashMap::new();
    // Known splat constants in the new graph: var -> value.
    let mut splat: HashMap<VarId, f32> = HashMap::new();

    for Eqn {
        prim,
        inputs,
        output,
    } in jaxpr.eqns()
    {
        let new_inputs: Vec<VarId> = inputs.iter().map(|v| map[v]).collect();

        // Constant folding: all operands are known splats, and the op is
        // pure elementwise/reduce/shape (anything except the marker).
        let foldable = !matches!(prim, Prim::PipelineYield { .. })
            && !inputs.is_empty()
            && new_inputs.iter().all(|v| splat.contains_key(v));
        if foldable {
            let operands: Vec<Tensor> = new_inputs
                .iter()
                .zip(inputs)
                .map(|(nv, ov)| Tensor::full(jaxpr.shape(*ov).clone(), splat[nv]))
                .collect();
            let refs: Vec<&Tensor> = operands.iter().collect();
            if let Ok(value) = eval_prim(prim, &refs) {
                let first = value.data().first().copied().unwrap_or(0.0);
                if value.data().iter().all(|&x| x == first) {
                    let key = eqn_key(
                        &Prim::Fill {
                            value: first,
                            shape: jaxpr.shape(*output).clone(),
                        },
                        &[],
                    );
                    let nv = if let Some(&existing) = seen.get(&key) {
                        existing
                    } else {
                        let nv = b.emit(
                            Prim::Fill {
                                value: first,
                                shape: jaxpr.shape(*output).clone(),
                            },
                            &[],
                        )?;
                        seen.insert(key, nv);
                        nv
                    };
                    stats.folded += 1;
                    splat.insert(nv, first);
                    map.insert(*output, nv);
                    continue;
                }
            }
        }

        // CSE: identical prim + operands (markers excluded — each yield
        // is a distinct boundary).
        let key = eqn_key(prim, &new_inputs);
        if !matches!(prim, Prim::PipelineYield { .. }) {
            if let Some(&existing) = seen.get(&key) {
                stats.cse_removed += 1;
                map.insert(*output, existing);
                continue;
            }
        }
        let nv = b.emit(prim.clone(), &new_inputs)?;
        if let Prim::Fill { value, .. } = prim {
            splat.insert(nv, *value);
        }
        seen.insert(key, nv);
        map.insert(*output, nv);
    }

    let outs: Vec<VarId> = jaxpr.outvars().iter().map(|v| map[v]).collect();
    let mut optimized = b.finish(outs)?;
    stats.dce_removed = optimized.dce();
    Ok((optimized, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval;
    use crate::trace::TraceCtx;

    #[test]
    fn cse_merges_duplicate_work() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let w = ctx.input([2, 2]);
        // The same matmul traced twice.
        let a = x.matmul(&w).unwrap();
        let b2 = x.matmul(&w).unwrap();
        let y = a.add(&b2).unwrap().sum();
        let j = ctx.finish(&[y]).unwrap();
        let (opt, stats) = optimize(&j).unwrap();
        assert_eq!(stats.cse_removed, 1);
        assert!(opt.eqns().len() < j.eqns().len());
        // Semantics preserved.
        let inputs = vec![Tensor::eye(2), Tensor::full([2, 2], 2.0)];
        assert_eq!(
            eval(&j, &inputs).unwrap()[0],
            eval(&opt, &inputs).unwrap()[0]
        );
    }

    #[test]
    fn folds_constant_chains() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2]);
        let zero = ctx.fill([2], 0.0);
        let two = ctx.fill([2], 1.0).scale(2.0); // constant 2.0
        let y = x.add(&zero).unwrap().mul(&two).unwrap().sum();
        let j = ctx.finish(&[y]).unwrap();
        let (opt, stats) = optimize(&j).unwrap();
        assert!(stats.folded >= 1, "{stats:?}");
        let inputs = vec![Tensor::from_vec([2], vec![1.0, 3.0]).unwrap()];
        assert_eq!(
            eval(&j, &inputs).unwrap()[0],
            eval(&opt, &inputs).unwrap()[0]
        );
    }

    #[test]
    fn yields_are_preserved() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let a = ctx.pipeline_yield(&x.scale(2.0));
        let b2 = a.mul(&a).unwrap().sum();
        let j = ctx.finish(&[b2]).unwrap();
        let (opt, _) = optimize(&j).unwrap();
        let yields = opt
            .eqns()
            .iter()
            .filter(|e| matches!(e.prim, Prim::PipelineYield { .. }))
            .count();
        assert_eq!(yields, 1);
    }

    #[test]
    fn distinct_scalars_not_merged() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2]);
        let a = x.scale(2.0);
        let b2 = x.scale(3.0);
        let y = a.add(&b2).unwrap().sum();
        let j = ctx.finish(&[y]).unwrap();
        let (opt, stats) = optimize(&j).unwrap();
        assert_eq!(stats.cse_removed, 0);
        let inputs = vec![Tensor::from_vec([2], vec![1.0, 1.0]).unwrap()];
        assert_eq!(
            eval(&j, &inputs).unwrap()[0],
            eval(&opt, &inputs).unwrap()[0]
        );
    }

    #[test]
    fn optimization_is_idempotent() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let w = ctx.input([2, 2]);
        let a = x.matmul(&w).unwrap();
        let b2 = x.matmul(&w).unwrap();
        let y = a.add(&b2).unwrap().sum();
        let j = ctx.finish(&[y]).unwrap();
        let (opt1, _) = optimize(&j).unwrap();
        let (opt2, stats2) = optimize(&opt1).unwrap();
        assert_eq!(opt1.eqns().len(), opt2.eqns().len());
        assert_eq!(stats2.cse_removed, 0);
        assert_eq!(stats2.folded, 0);
    }
}
