//! Dense row-major `f32` tensors backed by shared, immutable buffers.
//!
//! `Tensor` data lives in an `Arc<[f32]>`: cloning a tensor, reshaping
//! it, yielding it across a pipeline boundary, or sending it to another
//! actor are all O(1) handle copies — the executable analogue of passing
//! device-buffer references between the paper's Ray actors. Compute
//! kernels (matmul, batched matmul, transpose) are cache-blocked and
//! multi-threaded (see [`crate::kernels`]), with reduction orders that
//! are bit-compatible with the naive seed kernels at any thread count.
//! The interpreter additionally runs elementwise ops in place when it
//! holds the only reference to a buffer ([`Tensor::map_into`],
//! [`Tensor::zip_into`]).

use std::fmt;
use std::sync::Arc;

use crate::error::{IrError, Result};
use crate::kernels;
use crate::rng::Rng;
use crate::shape::Shape;

/// A dense row-major tensor of `f32` values with shared storage.
///
/// # Examples
///
/// ```
/// use raxpp_ir::Tensor;
/// let a = Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?;
/// let b = Tensor::eye(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c.data(), a.data());
/// # Ok::<(), raxpp_ir::IrError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Arc<[f32]>,
}

impl Tensor {
    fn from_parts(shape: Shape, data: Vec<f32>) -> Tensor {
        debug_assert_eq!(shape.numel(), data.len());
        Tensor {
            shape,
            data: data.into(),
        }
    }

    /// Builds a tensor from a shape and a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] when `data.len()` does not equal the
    /// shape's element count.
    pub fn from_vec(shape: impl Into<Shape>, data: Vec<f32>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != data.len() {
            return Err(IrError::Invalid(format!(
                "tensor data length {} does not match shape {} ({} elements)",
                data.len(),
                shape,
                shape.numel()
            )));
        }
        Ok(Tensor::from_parts(shape, data))
    }

    /// A scalar tensor.
    pub fn scalar(value: f32) -> Tensor {
        Tensor::from_parts(Shape::scalar(), vec![value])
    }

    /// A tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        Tensor::from_parts(shape, vec![value; n])
    }

    /// An all-zeros tensor.
    pub fn zeros(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 0.0)
    }

    /// An all-ones tensor.
    pub fn ones(shape: impl Into<Shape>) -> Tensor {
        Tensor::full(shape, 1.0)
    }

    /// The `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Tensor {
        let mut data = vec![0.0f32; n * n];
        for i in 0..n {
            data[i * n + i] = 1.0;
        }
        Tensor::from_parts(Shape::new([n, n]), data)
    }

    /// A tensor of i.i.d. standard normal samples drawn from `rng`, scaled
    /// by `std`.
    pub fn randn(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Tensor {
        let shape = shape.into();
        let n = shape.numel();
        // Box-Muller keeps us independent of any distributions crate.
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor::from_parts(shape, data)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The flat row-major data buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Whether this handle is the sole owner of its buffer (no other
    /// tensor, store, or in-flight send aliases it).
    pub fn is_unique(&self) -> bool {
        Arc::strong_count(&self.data) == 1
    }

    /// A tensor with the same shape whose buffer is freshly allocated
    /// (never shared). Used by the reference interpreter to reproduce
    /// the pre-optimization deep-copy cost model.
    pub fn deep_copy(&self) -> Tensor {
        Tensor::from_parts(self.shape.clone(), self.data.to_vec())
    }

    /// The single value of a scalar tensor.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::RankMismatch`] for non-scalars.
    pub fn item(&self) -> Result<f32> {
        if !self.shape.is_scalar() {
            return Err(IrError::RankMismatch {
                context: "item".into(),
                expected: 0,
                found: self.shape.rank(),
            });
        }
        Ok(self.data[0])
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise, stealing this tensor's buffer when it is
    /// uniquely owned (no allocation) and falling back to [`Tensor::map`]
    /// otherwise. Returns the result and whether the buffer was reused.
    pub fn map_into(mut self, f: impl Fn(f32) -> f32) -> (Tensor, bool) {
        match Arc::get_mut(&mut self.data) {
            Some(buf) => {
                for x in buf.iter_mut() {
                    *x = f(*x);
                }
                (self, true)
            }
            None => (self.map(f), false),
        }
    }

    /// Combines two same-shaped tensors elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ShapeMismatch`] when shapes differ. Broadcasting
    /// is intentionally *not* implicit — the IR represents it as an explicit
    /// broadcast operation so its gradient is explicit too.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        if self.shape != other.shape {
            return Err(IrError::ShapeMismatch {
                context: "elementwise op".into(),
                expected: self.shape.clone(),
                found: other.shape.clone(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise combine that steals a uniquely-owned operand buffer
    /// (preferring `self`, then `other`) and writes the result in place;
    /// allocates only when both operands are shared. Returns the result
    /// and whether a buffer was reused.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ShapeMismatch`] when shapes differ.
    pub fn zip_into(
        mut self,
        mut other: Tensor,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<(Tensor, bool)> {
        if self.shape != other.shape {
            return Err(IrError::ShapeMismatch {
                context: "elementwise op".into(),
                expected: self.shape.clone(),
                found: other.shape.clone(),
            });
        }
        if let Some(buf) = Arc::get_mut(&mut self.data) {
            for (x, &y) in buf.iter_mut().zip(other.data.iter()) {
                *x = f(*x, y);
            }
            return Ok((self, true));
        }
        if let Some(buf) = Arc::get_mut(&mut other.data) {
            for (y, &x) in buf.iter_mut().zip(self.data.iter()) {
                *y = f(x, *y);
            }
            return Ok((other, true));
        }
        self.zip(&other, f).map(|t| (t, false))
    }

    /// 2-D matrix multiply (cache-blocked, multi-threaded).
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank 2 with a matching
    /// contraction dimension.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let out_shape = self.shape.matmul(&rhs.shape)?;
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let n = rhs.shape.dim(1);
        let out = kernels::matmul(&self.data, &rhs.data, m, k, n);
        Ok(Tensor::from_parts(out_shape, out))
    }

    /// 2-D matrix multiply using the seed repo's naive serial kernel.
    /// Kept for kernel-parity tests and pre-optimization baselines.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::matmul`].
    pub fn matmul_naive(&self, rhs: &Tensor) -> Result<Tensor> {
        let out_shape = self.shape.matmul(&rhs.shape)?;
        let (m, k) = (self.shape.dim(0), self.shape.dim(1));
        let n = rhs.shape.dim(1);
        let out = kernels::matmul_naive(&self.data, &rhs.data, m, k, n);
        Ok(Tensor::from_parts(out_shape, out))
    }

    /// Transpose of the last two dimensions (rank ≥ 2; leading batch
    /// dimensions are preserved). Tile-blocked and multi-threaded.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::RankMismatch`] for rank < 2.
    pub fn transpose(&self) -> Result<Tensor> {
        let r = self.shape.rank();
        if r < 2 {
            return Err(IrError::RankMismatch {
                context: "transpose".into(),
                expected: 2,
                found: r,
            });
        }
        let out_shape = self.shape.transposed()?;
        let (m, n) = (self.shape.dim(r - 2), self.shape.dim(r - 1));
        let batch = self.numel().checked_div(m * n).unwrap_or(0);
        let out = kernels::transpose(&self.data, batch, m, n);
        Ok(Tensor::from_parts(out_shape, out))
    }

    /// Transpose using the seed repo's naive serial kernel.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::transpose`].
    pub fn transpose_naive(&self) -> Result<Tensor> {
        let r = self.shape.rank();
        if r < 2 {
            return Err(IrError::RankMismatch {
                context: "transpose".into(),
                expected: 2,
                found: r,
            });
        }
        let out_shape = self.shape.transposed()?;
        let (m, n) = (self.shape.dim(r - 2), self.shape.dim(r - 1));
        let batch = self.numel().checked_div(m * n).unwrap_or(0);
        let out = kernels::transpose_naive(&self.data, batch, m, n);
        Ok(Tensor::from_parts(out_shape, out))
    }

    /// Batched matrix multiply `[b…, m, k] @ [b…, k, n]` (blocked,
    /// multi-threaded).
    ///
    /// # Errors
    ///
    /// See [`Shape::batch_matmul`].
    pub fn batch_matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let out_shape = self.shape.batch_matmul(&rhs.shape)?;
        let r = self.shape.rank();
        let (m, k) = (self.shape.dim(r - 2), self.shape.dim(r - 1));
        let n = rhs.shape.dim(r - 1);
        let batch = self.shape.dims()[..r - 2].iter().product();
        let out = kernels::batch_matmul(&self.data, &rhs.data, batch, m, k, n);
        Ok(Tensor::from_parts(out_shape, out))
    }

    /// Batched matmul using the seed repo's naive serial kernel.
    ///
    /// # Errors
    ///
    /// Same contract as [`Tensor::batch_matmul`].
    pub fn batch_matmul_naive(&self, rhs: &Tensor) -> Result<Tensor> {
        let out_shape = self.shape.batch_matmul(&rhs.shape)?;
        let r = self.shape.rank();
        let (m, k) = (self.shape.dim(r - 2), self.shape.dim(r - 1));
        let n = rhs.shape.dim(r - 1);
        let batch = self.shape.dims()[..r - 2].iter().product();
        let out = kernels::batch_matmul_naive(&self.data, &rhs.data, batch, m, k, n);
        Ok(Tensor::from_parts(out_shape, out))
    }

    /// General axis permutation.
    ///
    /// # Errors
    ///
    /// See [`Shape::permuted`].
    pub fn permute(&self, perm: &[usize]) -> Result<Tensor> {
        let out_shape = self.shape.permuted(perm)?;
        let in_strides = self.shape.strides();
        let out_strides = out_shape.strides();
        let mut out = vec![0.0f32; self.numel()];
        for (flat, slot) in out.iter_mut().enumerate() {
            let mut src = 0;
            for (axis, &p) in perm.iter().enumerate() {
                let coord = (flat / out_strides[axis]) % out_shape.dim(axis);
                src += coord * in_strides[p];
            }
            *slot = self.data[src];
        }
        Ok(Tensor::from_parts(out_shape, out))
    }

    /// Reshape preserving element count. O(1): the result shares this
    /// tensor's buffer.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::ReshapeError`] when counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<Tensor> {
        let shape = shape.into();
        if shape.numel() != self.numel() {
            return Err(IrError::ReshapeError {
                from: self.shape.clone(),
                to: shape,
            });
        }
        Ok(Tensor {
            shape,
            data: Arc::clone(&self.data),
        })
    }

    /// Broadcast to `target` under NumPy alignment rules.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BroadcastError`] for incompatible shapes.
    pub fn broadcast_to(&self, target: impl Into<Shape>) -> Result<Tensor> {
        let target = target.into();
        if !self.shape.broadcastable_to(&target) {
            return Err(IrError::BroadcastError {
                from: self.shape.clone(),
                to: target,
            });
        }
        let offset = target.rank() - self.shape.rank();
        let src_strides = self.shape.strides();
        let tgt_strides = target.strides();
        let n = target.numel();
        let mut out = vec![0.0f32; n];
        for (flat, slot) in out.iter_mut().enumerate() {
            let mut src_index = 0;
            #[allow(clippy::needless_range_loop)]
            for axis in 0..target.rank() {
                let coord = (flat / tgt_strides[axis]) % target.dim(axis);
                if axis >= offset {
                    let saxis = axis - offset;
                    if self.shape.dim(saxis) != 1 {
                        src_index += coord * src_strides[saxis];
                    }
                }
            }
            *slot = self.data[src_index];
        }
        Ok(Tensor::from_parts(target, out))
    }

    /// Sum over `axes`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::AxisOutOfRange`] for invalid axes.
    pub fn reduce_sum(&self, axes: &[usize], keepdims: bool) -> Result<Tensor> {
        self.reduce(axes, keepdims, 0.0, |acc, x| acc + x)
    }

    /// Maximum over `axes`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::AxisOutOfRange`] for invalid axes.
    pub fn reduce_max(&self, axes: &[usize], keepdims: bool) -> Result<Tensor> {
        self.reduce(axes, keepdims, f32::NEG_INFINITY, f32::max)
    }

    fn reduce(
        &self,
        axes: &[usize],
        keepdims: bool,
        init: f32,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Tensor> {
        let out_shape = self.shape.reduced(axes, keepdims)?;
        // Shape with kept dims (size-1 on reduced axes) for index mapping.
        let kept = self.shape.reduced(axes, true)?;
        let kept_strides = kept.strides();
        let src_strides = self.shape.strides();
        let mut out = vec![init; kept.numel()];
        for (flat, &v) in self.data.iter().enumerate() {
            let mut idx = 0;
            for axis in 0..self.shape.rank() {
                let coord = (flat / src_strides[axis]) % self.shape.dim(axis);
                if !axes.contains(&axis) {
                    idx += coord * kept_strides[axis];
                }
            }
            out[idx] = f(out[idx], v);
        }
        let t = Tensor::from_parts(kept, out);
        if keepdims {
            Ok(t)
        } else {
            t.reshape(out_shape)
        }
    }

    /// Concatenates same-rank tensors along `dim`.
    ///
    /// All dimensions other than `dim` must match across operands. The
    /// result is a pure byte reordering of the operands' blocks — no
    /// arithmetic is performed — so gathering tensor-parallel shards and
    /// concatenating them is bitwise-exact.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] for an empty operand list or
    /// mismatched ranks/dimensions, [`IrError::AxisOutOfRange`] when
    /// `dim` exceeds the rank.
    pub fn concat(parts: &[&Tensor], dim: usize) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| IrError::Invalid("concat requires at least one operand".into()))?;
        let rank = first.shape.rank();
        if dim >= rank {
            return Err(IrError::AxisOutOfRange {
                context: "concat".into(),
                axis: dim,
                rank,
            });
        }
        let mut cat_dim = 0;
        for p in parts {
            if p.shape.rank() != rank {
                return Err(IrError::Invalid(format!(
                    "concat rank mismatch: {} vs {}",
                    first.shape, p.shape
                )));
            }
            for d in 0..rank {
                if d != dim && p.shape.dim(d) != first.shape.dim(d) {
                    return Err(IrError::Invalid(format!(
                        "concat dim {d} mismatch: {} vs {}",
                        first.shape, p.shape
                    )));
                }
            }
            cat_dim += p.shape.dim(dim);
        }
        let mut dims = first.shape.dims().to_vec();
        dims[dim] = cat_dim;
        let out_shape = Shape::new(dims);
        let outer: usize = first.shape.dims()[..dim].iter().product();
        let mut out = Vec::with_capacity(out_shape.numel());
        for o in 0..outer {
            for p in parts {
                let block = p.numel() / outer.max(1);
                out.extend_from_slice(&p.data[o * block..(o + 1) * block]);
            }
        }
        Ok(Tensor::from_parts(out_shape, out))
    }

    /// The contiguous block `[start, start + len)` along dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::AxisOutOfRange`] when `dim` exceeds the rank,
    /// [`IrError::Invalid`] when the block exceeds the dimension.
    pub fn slice_dim(&self, dim: usize, start: usize, len: usize) -> Result<Tensor> {
        let rank = self.shape.rank();
        if dim >= rank {
            return Err(IrError::AxisOutOfRange {
                context: "slice".into(),
                axis: dim,
                rank,
            });
        }
        let mid = self.shape.dim(dim);
        if start + len > mid {
            return Err(IrError::Invalid(format!(
                "slice [{start}, {}) out of bounds for dim {dim} of {}",
                start + len,
                self.shape
            )));
        }
        let inner: usize = self.shape.dims()[dim + 1..].iter().product();
        let outer: usize = self.shape.dims()[..dim].iter().product();
        let mut dims = self.shape.dims().to_vec();
        dims[dim] = len;
        let mut out = Vec::with_capacity(outer * len * inner);
        for o in 0..outer {
            let row = (o * mid + start) * inner;
            out.extend_from_slice(&self.data[row..row + len * inner]);
        }
        Ok(Tensor::from_parts(Shape::new(dims), out))
    }

    /// Embeds this tensor as the block starting at `start` along the last
    /// axis of an output whose last axis has size `full`, filling the
    /// remainder with `value`.
    ///
    /// Padding with `-0.0` makes a subsequent exact elementwise sum of
    /// disjointly-padded shards bitwise-identical to concatenation
    /// (`x + (-0.0) == x` bitwise for every `x`, including `x == -0.0`).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::RankMismatch`] for scalars and
    /// [`IrError::Invalid`] when the block does not fit.
    pub fn pad_last(&self, start: usize, full: usize, value: f32) -> Result<Tensor> {
        let rank = self.shape.rank();
        if rank == 0 {
            return Err(IrError::RankMismatch {
                context: "pad_last".into(),
                expected: 1,
                found: 0,
            });
        }
        let last = self.shape.dim(rank - 1);
        if start + last > full {
            return Err(IrError::Invalid(format!(
                "pad_last block [{start}, {}) does not fit in {full}",
                start + last
            )));
        }
        let rows = self.numel() / last.max(1);
        let mut dims = self.shape.dims().to_vec();
        dims[rank - 1] = full;
        let mut out = vec![value; rows * full];
        if last > 0 {
            for r in 0..rows {
                out[r * full + start..r * full + start + last]
                    .copy_from_slice(&self.data[r * last..(r + 1) * last]);
            }
        }
        Ok(Tensor::from_parts(Shape::new(dims), out))
    }

    /// Embeds this tensor as the block starting at `start` along the
    /// *first* axis of an output whose first axis has size `full`,
    /// filling the remainder with `value`.
    ///
    /// The first-dim counterpart of [`Tensor::pad_last`], used by ZeRO-1
    /// optimizer-state sharding (the first dim is the axis tensor
    /// parallelism never shards). The same `-0.0` padding trick applies:
    /// summing disjointly-padded shards is bitwise concatenation.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::RankMismatch`] for scalars and
    /// [`IrError::Invalid`] when the block does not fit.
    pub fn pad_first(&self, start: usize, full: usize, value: f32) -> Result<Tensor> {
        let rank = self.shape.rank();
        if rank == 0 {
            return Err(IrError::RankMismatch {
                context: "pad_first".into(),
                expected: 1,
                found: 0,
            });
        }
        let first = self.shape.dim(0);
        if start + first > full {
            return Err(IrError::Invalid(format!(
                "pad_first block [{start}, {}) does not fit in {full}",
                start + first
            )));
        }
        let inner = self.numel() / first.max(1);
        let mut dims = self.shape.dims().to_vec();
        dims[0] = full;
        let mut out = vec![value; full * inner];
        out[start * inner..start * inner + first * inner].copy_from_slice(&self.data);
        Ok(Tensor::from_parts(Shape::new(dims), out))
    }

    /// Maximum absolute difference with `other`, or `None` if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> Option<f32> {
        if self.shape != other.shape {
            return None;
        }
        Some(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| (a - b).abs())
                .fold(0.0, f32::max),
        )
    }

    /// Whether every element is within `tol` of `other` (relative to
    /// magnitude for large values).
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.data.iter().zip(other.data.iter()).all(|(&a, &b)| {
            let scale = 1.0f32.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

/// GELU activation (tanh approximation), matching the transformer models in
/// the paper's workloads.
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`] with respect to its input.
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let inner = C * (x + 0.044715 * x * x * x);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{SeedableRng, StdRng};

    #[test]
    fn construction_validates_length() {
        assert!(Tensor::from_vec([2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec([2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn matmul_reference() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec([3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let a = Tensor::randn([4, 4], 1.0, &mut rng);
        let c = a.matmul(&Tensor::eye(4)).unwrap();
        assert!(a.allclose(&c, 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Tensor::randn([3, 5], 1.0, &mut rng);
        let b = a.transpose().unwrap().transpose().unwrap();
        assert!(a.allclose(&b, 0.0));
    }

    #[test]
    fn batched_transpose() {
        let a = Tensor::from_vec([2, 2, 2], vec![1., 2., 3., 4., 5., 6., 7., 8.]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.data(), &[1., 3., 2., 4., 5., 7., 6., 8.]);
    }

    #[test]
    fn batch_matmul_matches_per_slice_matmul() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = Tensor::randn([3, 2, 4], 1.0, &mut rng);
        let b = Tensor::randn([3, 4, 5], 1.0, &mut rng);
        let c = a.batch_matmul(&b).unwrap();
        for s in 0..3 {
            let a2 = Tensor::from_vec([2, 4], a.data()[s * 8..(s + 1) * 8].to_vec()).unwrap();
            let b2 = Tensor::from_vec([4, 5], b.data()[s * 20..(s + 1) * 20].to_vec()).unwrap();
            let c2 = a2.matmul(&b2).unwrap();
            assert_eq!(&c.data()[s * 10..(s + 1) * 10], c2.data());
        }
    }

    #[test]
    fn permute_roundtrip() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = Tensor::randn([2, 3, 4], 1.0, &mut rng);
        let p = a.permute(&[2, 0, 1]).unwrap();
        assert_eq!(p.shape(), &Shape::new([4, 2, 3]));
        // Inverse of [2,0,1] is [1,2,0].
        let back = p.permute(&[1, 2, 0]).unwrap();
        assert_eq!(back.data(), a.data());
        assert!(a.permute(&[0, 0, 1]).is_err());
    }

    #[test]
    fn broadcast_row() {
        let row = Tensor::from_vec([3], vec![1., 2., 3.]).unwrap();
        let b = row.broadcast_to([2, 3]).unwrap();
        assert_eq!(b.data(), &[1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn broadcast_col() {
        let col = Tensor::from_vec([2, 1], vec![1., 2.]).unwrap();
        let b = col.broadcast_to([2, 3]).unwrap();
        assert_eq!(b.data(), &[1., 1., 1., 2., 2., 2.]);
    }

    #[test]
    fn broadcast_scalar() {
        let s = Tensor::scalar(5.0);
        let b = s.broadcast_to([2, 2]).unwrap();
        assert_eq!(b.data(), &[5., 5., 5., 5.]);
    }

    #[test]
    fn reduce_sum_axes() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r0 = a.reduce_sum(&[0], false).unwrap();
        assert_eq!(r0.data(), &[5., 7., 9.]);
        let r1 = a.reduce_sum(&[1], false).unwrap();
        assert_eq!(r1.data(), &[6., 15.]);
        let rall = a.reduce_sum(&[0, 1], false).unwrap();
        assert_eq!(rall.item().unwrap(), 21.0);
        let rk = a.reduce_sum(&[1], true).unwrap();
        assert_eq!(rk.shape(), &Shape::new([2, 1]));
    }

    #[test]
    fn reduce_max_axes() {
        let a = Tensor::from_vec([2, 3], vec![1., 9., 3., 4., 5., 6.]).unwrap();
        let r = a.reduce_max(&[1], false).unwrap();
        assert_eq!(r.data(), &[9., 6.]);
    }

    #[test]
    fn reduce_then_broadcast_roundtrip() {
        // sum with keepdims then broadcast restores the original shape.
        let mut rng = StdRng::seed_from_u64(2);
        let a = Tensor::randn([4, 6], 1.0, &mut rng);
        let r = a.reduce_sum(&[1], true).unwrap();
        let b = r.broadcast_to([4, 6]).unwrap();
        assert_eq!(b.shape(), a.shape());
    }

    #[test]
    fn gelu_values() {
        assert!(gelu(0.0).abs() < 1e-7);
        assert!((gelu(100.0) - 100.0).abs() < 1e-3);
        assert!(gelu(-100.0).abs() < 1e-3);
        // Numerical derivative check.
        for &x in &[-2.0f32, -0.5, 0.0, 0.3, 1.7] {
            let h = 1e-3;
            let num = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!(
                (num - gelu_grad(x)).abs() < 1e-3,
                "x={x}: {num} vs {}",
                gelu_grad(x)
            );
        }
    }

    #[test]
    fn randn_moments() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Tensor::randn([10_000], 1.0, &mut rng);
        let mean: f32 = t.data().iter().sum::<f32>() / 10_000.0;
        let var: f32 = t.data().iter().map(|x| x * x).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn clone_and_reshape_share_storage() {
        let a = Tensor::from_vec([2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = a.clone();
        let r = a.reshape([3, 2]).unwrap();
        assert!(std::ptr::eq(a.data().as_ptr(), b.data().as_ptr()));
        assert!(std::ptr::eq(a.data().as_ptr(), r.data().as_ptr()));
        assert!(!a.is_unique());
    }

    #[test]
    fn map_into_steals_unique_buffers() {
        let a = Tensor::from_vec([4], vec![1., 2., 3., 4.]).unwrap();
        let ptr = a.data().as_ptr();
        let (b, reused) = a.map_into(|x| x * 2.0);
        assert!(reused);
        assert!(std::ptr::eq(ptr, b.data().as_ptr()));
        assert_eq!(b.data(), &[2., 4., 6., 8.]);

        // A shared buffer must not be mutated.
        let keep = b.clone();
        let (c, reused) = b.map_into(|x| x + 1.0);
        assert!(!reused);
        assert_eq!(keep.data(), &[2., 4., 6., 8.]);
        assert_eq!(c.data(), &[3., 5., 7., 9.]);
    }

    #[test]
    fn zip_into_steals_either_operand() {
        let a = Tensor::from_vec([3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec([3], vec![10., 20., 30.]).unwrap();
        let a_ptr = a.data().as_ptr();
        let (c, reused) = a.zip_into(b, |x, y| x + y).unwrap();
        assert!(reused);
        assert!(std::ptr::eq(a_ptr, c.data().as_ptr()));
        assert_eq!(c.data(), &[11., 22., 33.]);

        // self shared, other unique → other's buffer is stolen, with the
        // non-commutative argument order preserved.
        let a = Tensor::from_vec([3], vec![8., 8., 8.]).unwrap();
        let a_alias = a.clone();
        let b = Tensor::from_vec([3], vec![1., 2., 3.]).unwrap();
        let b_ptr = b.data().as_ptr();
        let (c, reused) = a.zip_into(b, |x, y| x - y).unwrap();
        assert!(reused);
        assert!(std::ptr::eq(b_ptr, c.data().as_ptr()));
        assert_eq!(c.data(), &[7., 6., 5.]);
        assert_eq!(a_alias.data(), &[8., 8., 8.]);

        // Both shared → allocate.
        let a = Tensor::from_vec([2], vec![1., 1.]).unwrap();
        let b = Tensor::from_vec([2], vec![2., 2.]).unwrap();
        let (_a2, _b2) = (a.clone(), b.clone());
        let (c, reused) = a.zip_into(b, |x, y| x * y).unwrap();
        assert!(!reused);
        assert_eq!(c.data(), &[2., 2.]);
    }

    #[test]
    fn blocked_matmul_is_bit_identical_to_naive() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(m, k, n) in &[(1, 1, 1), (7, 5, 3), (64, 64, 64), (33, 17, 65)] {
            let a = Tensor::randn([m, k], 1.0, &mut rng);
            let b = Tensor::randn([k, n], 1.0, &mut rng);
            assert_eq!(
                a.matmul(&b).unwrap().data(),
                a.matmul_naive(&b).unwrap().data(),
                "({m},{k},{n})"
            );
        }
    }
}
