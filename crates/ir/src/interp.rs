//! CPU interpreter for [`Jaxpr`] graphs with buffer-liveness tracking.
//!
//! The interpreter mirrors the paper's buffer-deletion discipline
//! (§4.2–4.3) on a single device: before execution it computes a
//! last-use table over the graph, drops each intermediate buffer at its
//! last consuming equation, and lets elementwise primitives *steal* a
//! uniquely-owned operand buffer for in-place execution. Buffers that
//! arrived from the caller (or sit in an actor's object store) are
//! always aliased from outside the interpreter, so `Arc::get_mut` fails
//! on them and they are never mutated — only graph-local intermediates
//! are recycled.
//!
//! [`eval_reference`] preserves the pre-optimization execution model
//! (deep-copied inputs, naive serial kernels, copying yields) so
//! benchmarks can measure the speedup against an honest baseline;
//! [`set_reference_mode`] (or `RAXPP_REFERENCE=1`) routes [`eval`]
//! through it globally.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::error::{IrError, Result};
use crate::graph::Jaxpr;
use crate::kernels;
use crate::prim::Prim;
use crate::shape::Shape;
use crate::tensor::{gelu, gelu_grad, Tensor};

/// Buffer-allocator counters for one [`eval_with_stats`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Output buffers freshly allocated.
    pub allocated: u64,
    /// Outputs that reused an operand buffer in place or aliased it
    /// zero-copy (reshape, pipeline yield).
    pub reused: u64,
    /// Intermediate buffers dropped at their last use.
    pub freed: u64,
}

impl EvalStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &EvalStats) {
        self.allocated += other.allocated;
        self.reused += other.reused;
        self.freed += other.freed;
    }
}

static REFERENCE: AtomicBool = AtomicBool::new(false);
static REFERENCE_ENV: OnceLock<bool> = OnceLock::new();

/// Globally routes [`eval`] through [`eval_reference`] (the pre-optimization
/// deep-copy + naive-kernel execution model). Used by benchmarks to measure
/// the optimized path against an honest baseline.
pub fn set_reference_mode(on: bool) {
    REFERENCE.store(on, Ordering::SeqCst);
}

fn reference_mode() -> bool {
    REFERENCE.load(Ordering::SeqCst)
        || *REFERENCE_ENV.get_or_init(|| {
            std::env::var("RAXPP_REFERENCE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false)
        })
}

/// Evaluates a single primitive on concrete tensors.
///
/// # Errors
///
/// Returns arity/shape errors when operands are invalid for `prim`.
pub fn eval_prim(prim: &Prim, inputs: &[&Tensor]) -> Result<Tensor> {
    if inputs.len() != prim.arity() {
        return Err(IrError::ArityMismatch {
            context: prim.name().into(),
            expected: prim.arity(),
            found: inputs.len(),
        });
    }
    match prim {
        Prim::Add => inputs[0].zip(inputs[1], |a, b| a + b),
        Prim::Sub => inputs[0].zip(inputs[1], |a, b| a - b),
        Prim::Mul => inputs[0].zip(inputs[1], |a, b| a * b),
        Prim::Div => inputs[0].zip(inputs[1], |a, b| a / b),
        Prim::Neg => Ok(inputs[0].map(|x| -x)),
        Prim::Scale(c) => Ok(inputs[0].map(|x| x * c)),
        Prim::AddScalar(c) => Ok(inputs[0].map(|x| x + c)),
        Prim::MatMul => inputs[0].matmul(inputs[1]),
        Prim::BatchMatMul => inputs[0].batch_matmul(inputs[1]),
        Prim::Transpose => inputs[0].transpose(),
        Prim::Permute { perm } => inputs[0].permute(perm),
        Prim::Relu => Ok(inputs[0].map(|x| x.max(0.0))),
        Prim::Gelu => Ok(inputs[0].map(gelu)),
        Prim::Tanh => Ok(inputs[0].map(f32::tanh)),
        Prim::Exp => Ok(inputs[0].map(f32::exp)),
        Prim::Log => Ok(inputs[0].map(f32::ln)),
        Prim::Sqrt => Ok(inputs[0].map(f32::sqrt)),
        Prim::Rsqrt => Ok(inputs[0].map(|x| 1.0 / x.sqrt())),
        Prim::Step => Ok(inputs[0].map(|x| if x > 0.0 { 1.0 } else { 0.0 })),
        Prim::GeluGrad => Ok(inputs[0].map(gelu_grad)),
        Prim::ReduceSum { axes, keepdims } => inputs[0].reduce_sum(axes, *keepdims),
        Prim::ReduceMax { axes, keepdims } => inputs[0].reduce_max(axes, *keepdims),
        Prim::Broadcast { shape } => inputs[0].broadcast_to(shape.clone()),
        Prim::Reshape { shape } => inputs[0].reshape(shape.clone()),
        Prim::Fill { value, shape } => Ok(Tensor::full(shape.clone(), *value)),
        Prim::SliceLast { start, len } => {
            let r = inputs[0].shape().rank().max(1);
            inputs[0].slice_dim(r - 1, *start, *len)
        }
        Prim::PadLast { start, full, value } => inputs[0].pad_last(*start, *full, *value),
        Prim::SliceFirst { start, len } => inputs[0].slice_dim(0, *start, *len),
        Prim::PadFirst { start, full, value } => inputs[0].pad_first(*start, *full, *value),
        // Yields are pure identity markers at run time.
        Prim::PipelineYield { .. } => Ok(inputs[0].clone()),
    }
}

/// Evaluates a primitive on *owned* operands, writing in place when an
/// operand buffer is uniquely held and aliasing zero-copy where the op
/// permits it. Numerically bit-identical to [`eval_prim`].
fn eval_prim_owned(prim: &Prim, mut inputs: Vec<Tensor>, stats: &mut EvalStats) -> Result<Tensor> {
    if inputs.len() != prim.arity() {
        return Err(IrError::ArityMismatch {
            context: prim.name().into(),
            expected: prim.arity(),
            found: inputs.len(),
        });
    }
    macro_rules! unary {
        ($f:expr) => {{
            let (t, reused) = inputs.pop().expect("arity checked").map_into($f);
            if reused {
                stats.reused += 1;
            } else {
                stats.allocated += 1;
            }
            Ok(t)
        }};
    }
    macro_rules! binary {
        ($f:expr) => {{
            let b = inputs.pop().expect("arity checked");
            let a = inputs.pop().expect("arity checked");
            let (t, reused) = a.zip_into(b, $f)?;
            if reused {
                stats.reused += 1;
            } else {
                stats.allocated += 1;
            }
            Ok(t)
        }};
    }
    match prim {
        Prim::Add => binary!(|a, b| a + b),
        Prim::Sub => binary!(|a, b| a - b),
        Prim::Mul => binary!(|a, b| a * b),
        Prim::Div => binary!(|a, b| a / b),
        Prim::Neg => unary!(|x| -x),
        Prim::Scale(c) => {
            let c = *c;
            unary!(move |x| x * c)
        }
        Prim::AddScalar(c) => {
            let c = *c;
            unary!(move |x| x + c)
        }
        Prim::Relu => unary!(|x: f32| x.max(0.0)),
        Prim::Gelu => unary!(gelu),
        Prim::Tanh => unary!(f32::tanh),
        Prim::Exp => unary!(f32::exp),
        Prim::Log => unary!(f32::ln),
        Prim::Sqrt => unary!(f32::sqrt),
        Prim::Rsqrt => unary!(|x: f32| 1.0 / x.sqrt()),
        Prim::Step => unary!(|x| if x > 0.0 { 1.0 } else { 0.0 }),
        Prim::GeluGrad => unary!(gelu_grad),
        // Zero-copy aliases: no buffer traffic at all.
        Prim::Reshape { shape } => {
            stats.reused += 1;
            inputs[0].reshape(shape.clone())
        }
        Prim::PipelineYield { .. } => {
            stats.reused += 1;
            Ok(inputs.pop().expect("arity checked"))
        }
        // Layout- and shape-changing ops allocate a fresh output.
        _ => {
            stats.allocated += 1;
            let refs: Vec<&Tensor> = inputs.iter().collect();
            eval_prim(prim, &refs)
        }
    }
}

/// For each variable, the 1-based index of the equation that consumes it
/// last; `usize::MAX` for graph outputs (never dropped), 0 for variables
/// that are never consumed.
fn last_use_table(jaxpr: &Jaxpr) -> Vec<usize> {
    let mut last_use = vec![0usize; jaxpr.num_vars()];
    for (i, eqn) in jaxpr.eqns().iter().enumerate() {
        for v in &eqn.inputs {
            last_use[v.index()] = i + 1;
        }
    }
    for v in jaxpr.outvars() {
        last_use[v.index()] = usize::MAX;
    }
    last_use
}

/// A per-equation observer for [`eval_with_stats_hooked`]: called after
/// each equation with `(equation_index, primitive_name, start, end)`.
///
/// Used by the runtime's step tracer to record op-level sub-spans.
/// Timestamps are taken only when a hook is installed, so hookless
/// evaluation pays nothing.
pub type EvalHook<'a> = &'a mut dyn FnMut(usize, &'static str, Instant, Instant);

/// A consumer of completed output-row panels for
/// [`eval_with_stats_observed`]: selected graph outputs are *streamed*
/// to the observer panel-by-panel while their producing matmul is still
/// multiplying later rows.
///
/// This is the compute side of tensor-parallel compute/communication
/// overlap — the runtime hands finished rows to the collective
/// rendezvous early. Streaming never changes *what* is computed: each
/// published panel holds exactly the bytes the final output tensor
/// holds at those rows (see [`kernels::matmul_streamed`]), so
/// observation cannot perturb the bit-compatibility contract.
pub trait PanelObserver {
    /// Whether graph output `out_idx` should be streamed if its
    /// producer supports it. Consulted once per output during planning.
    fn wants(&mut self, out_idx: usize) -> bool;
    /// Announces the full shape of output `out_idx` before its first
    /// panel publishes.
    fn begin(&mut self, out_idx: usize, shape: &Shape);
    /// Rows `row0 .. row0 + data.len()/row_len` of output `out_idx` are
    /// final; `data` holds them row-major. Panels arrive in ascending
    /// row order and exactly cover the output.
    fn publish(&mut self, out_idx: usize, row0: usize, row_len: usize, data: &[f32]);
}

/// How one matmul equation streams its panels to the observer.
enum StreamPlan {
    /// The graph output *is* the matmul result: publish raw row panels.
    Direct { out_idx: usize },
    /// The graph output is `PadLast(matmul)` and the matmul result has
    /// no other consumer (the sharded backward weight-gradient shape):
    /// pad each completed panel into the full-width buffer and publish
    /// padded rows, then reuse the assembled padded tensor when the pad
    /// equation executes.
    FusedPad {
        out_idx: usize,
        pad_eqn: usize,
        start: usize,
        full: usize,
        value: f32,
    },
}

/// Matmul equations eligible for panel streaming: for each graph output
/// the observer wants, its defining equation if that is a `MatMul` (or
/// a `PadLast` over a single-use `MatMul`, which streams fused).
fn stream_plans(jaxpr: &Jaxpr, obs: &mut dyn PanelObserver) -> HashMap<usize, StreamPlan> {
    let eqns = jaxpr.eqns();
    let mut def_eqn: Vec<Option<usize>> = vec![None; jaxpr.num_vars()];
    let mut use_count = vec![0usize; jaxpr.num_vars()];
    for (i, e) in eqns.iter().enumerate() {
        def_eqn[e.output.index()] = Some(i);
        for v in &e.inputs {
            use_count[v.index()] += 1;
        }
    }
    let mut out_uses = vec![0usize; jaxpr.num_vars()];
    for v in jaxpr.outvars() {
        out_uses[v.index()] += 1;
    }
    let mut plans = HashMap::new();
    for (oi, &v) in jaxpr.outvars().iter().enumerate() {
        if !obs.wants(oi) {
            continue;
        }
        let Some(d) = def_eqn[v.index()] else {
            continue;
        };
        match &eqns[d].prim {
            Prim::MatMul => {
                plans.entry(d).or_insert(StreamPlan::Direct { out_idx: oi });
            }
            Prim::PadLast { start, full, value } => {
                let u = eqns[d].inputs[0];
                let Some(mm) = def_eqn[u.index()] else {
                    continue;
                };
                // Fuse only when the pad is the matmul's sole consumer
                // and the raw result is not itself a graph output, and
                // the pad parameters are valid for the matmul's width
                // (invalid ones fall through to pad_last's own error).
                if matches!(eqns[mm].prim, Prim::MatMul)
                    && use_count[u.index()] == 1
                    && out_uses[u.index()] == 0
                    && jaxpr.shape(u).rank() == 2
                    && start + jaxpr.shape(u).dim(1) <= *full
                {
                    plans.entry(mm).or_insert(StreamPlan::FusedPad {
                        out_idx: oi,
                        pad_eqn: d,
                        start: *start,
                        full: *full,
                        value: *value,
                    });
                }
            }
            _ => {}
        }
    }
    plans
}

/// Executes one planned matmul equation, streaming completed panels to
/// `obs`. Returns the matmul result tensor; for [`StreamPlan::FusedPad`]
/// additionally deposits the assembled padded tensor in `prepared`
/// under the pad equation's index.
fn stream_matmul(
    plan: &StreamPlan,
    operands: &[Tensor],
    obs: &mut dyn PanelObserver,
    prepared: &mut HashMap<usize, Tensor>,
) -> Result<Tensor> {
    let (a, b) = (&operands[0], &operands[1]);
    let out_shape = a.shape().matmul(b.shape())?;
    let (m, k) = (a.shape().dim(0), a.shape().dim(1));
    let n = b.shape().dim(1);
    match plan {
        StreamPlan::Direct { out_idx } => {
            obs.begin(*out_idx, &out_shape);
            let data = kernels::matmul_streamed(a.data(), b.data(), m, k, n, &mut |row0, panel| {
                obs.publish(*out_idx, row0, n, panel);
            });
            Tensor::from_vec(out_shape, data)
        }
        StreamPlan::FusedPad {
            out_idx,
            pad_eqn,
            start,
            full,
            value,
        } => {
            // Build the padded output exactly as `Tensor::pad_last`
            // does — a `value`-filled buffer with each row's block
            // copied in at `start` — but row panel by row panel, so
            // padded rows publish while the multiply continues.
            let pad_shape = Shape::new([m, *full]);
            obs.begin(*out_idx, &pad_shape);
            let mut padded = vec![*value; m * *full];
            let data = kernels::matmul_streamed(a.data(), b.data(), m, k, n, &mut |row0, panel| {
                let rows = panel.len().checked_div(n).unwrap_or(0);
                for r in 0..rows {
                    let dst = (row0 + r) * *full + *start;
                    padded[dst..dst + n].copy_from_slice(&panel[r * n..(r + 1) * n]);
                }
                obs.publish(
                    *out_idx,
                    row0,
                    *full,
                    &padded[row0 * *full..(row0 + rows) * *full],
                );
            });
            prepared.insert(*pad_eqn, Tensor::from_vec(pad_shape, padded)?);
            Tensor::from_vec(out_shape, data)
        }
    }
}

/// Evaluates a graph on concrete inputs, returning outputs and
/// buffer-allocator statistics.
///
/// Intermediates are dropped at their last use and elementwise ops run
/// in place on uniquely-owned buffers; results are bit-identical to the
/// allocate-everything path because only buffer *lifetimes*, never
/// reduction orders, change.
///
/// # Errors
///
/// Returns an arity error when `inputs.len()` differs from the graph's
/// input count, a shape error when an input tensor's shape differs from
/// the declared one, or any primitive evaluation error.
pub fn eval_with_stats(jaxpr: &Jaxpr, inputs: &[Tensor]) -> Result<(Vec<Tensor>, EvalStats)> {
    eval_with_stats_hooked(jaxpr, inputs, None)
}

/// [`eval_with_stats`] with an optional per-equation observer hook.
///
/// The hook only *observes* (indices, primitive names, timestamps); it
/// cannot change which kernels run or in what order, so tracing cannot
/// perturb the bit-compatibility contract. Reference mode ignores the
/// hook (the baseline interpreter has no per-equation instrumentation).
///
/// # Errors
///
/// See [`eval_with_stats`].
pub fn eval_with_stats_hooked(
    jaxpr: &Jaxpr,
    inputs: &[Tensor],
    hook: Option<EvalHook<'_>>,
) -> Result<(Vec<Tensor>, EvalStats)> {
    eval_with_stats_observed(jaxpr, inputs, hook, None)
}

/// [`eval_with_stats_hooked`] with an optional [`PanelObserver`]: graph
/// outputs the observer wants, whose producer is a streamable matmul
/// (see `stream_plans`), publish completed row panels to the observer
/// *during* the multiply. Outputs, statistics, and buffer lifetimes are
/// identical to the unobserved path; reference mode ignores both the
/// hook and the observer.
///
/// # Errors
///
/// See [`eval_with_stats`].
pub fn eval_with_stats_observed(
    jaxpr: &Jaxpr,
    inputs: &[Tensor],
    mut hook: Option<EvalHook<'_>>,
    mut observer: Option<&mut dyn PanelObserver>,
) -> Result<(Vec<Tensor>, EvalStats)> {
    if reference_mode() {
        return eval_reference(jaxpr, inputs).map(|o| (o, EvalStats::default()));
    }
    if inputs.len() != jaxpr.invars().len() {
        return Err(IrError::ArityMismatch {
            context: "eval".into(),
            expected: jaxpr.invars().len(),
            found: inputs.len(),
        });
    }
    let mut stats = EvalStats::default();
    let last_use = last_use_table(jaxpr);
    let plans = match observer.as_deref_mut() {
        Some(obs) => stream_plans(jaxpr, obs),
        None => HashMap::new(),
    };
    let mut prepared: HashMap<usize, Tensor> = HashMap::new();
    let mut env: Vec<Option<Tensor>> = vec![None; jaxpr.num_vars()];
    for (&v, t) in jaxpr.invars().iter().zip(inputs) {
        if t.shape() != jaxpr.shape(v) {
            return Err(IrError::ShapeMismatch {
                context: format!("eval input {v}"),
                expected: jaxpr.shape(v).clone(),
                found: t.shape().clone(),
            });
        }
        // O(1) handle copy; the caller keeps its reference, so this
        // buffer can never be stolen for in-place writes.
        env[v.index()] = Some(t.clone());
    }
    for (i, eqn) in jaxpr.eqns().iter().enumerate() {
        let idx = i + 1;
        let mut operands: Vec<Tensor> = Vec::with_capacity(eqn.inputs.len());
        for (j, v) in eqn.inputs.iter().enumerate() {
            let vi = v.index();
            // Take (move out of the environment) at the variable's last
            // use — and, within this equation, only at its last
            // occurrence so duplicate operands stay consistent.
            let recurs_later = eqn.inputs[j + 1..].iter().any(|w| w.index() == vi);
            let t = if last_use[vi] == idx && !recurs_later {
                stats.freed += 1;
                env[vi].take()
            } else {
                env[vi].clone()
            };
            operands.push(t.ok_or(IrError::InvalidVar {
                context: "eval".into(),
                var: v.0,
            })?);
        }
        let t0 = hook.as_ref().map(|_| Instant::now());
        let out = if let Some(plan) = plans.get(&i) {
            // Streamed matmul: same kernel order and output bytes as
            // eval_prim_owned's MatMul arm, plus panel publication.
            stats.allocated += 1;
            stream_matmul(
                plan,
                &operands,
                observer.as_deref_mut().expect("plans imply observer"),
                &mut prepared,
            )?
        } else if let Some(t) = prepared.remove(&i) {
            // Pad equation fused into its producing matmul: the padded
            // tensor was assembled (bit-identically) during streaming;
            // operand take/free bookkeeping above already ran.
            stats.allocated += 1;
            t
        } else {
            eval_prim_owned(&eqn.prim, operands, &mut stats)?
        };
        if let (Some(h), Some(t0)) = (hook.as_mut(), t0) {
            h(i, eqn.prim.name(), t0, Instant::now());
        }
        let oi = eqn.output.index();
        if last_use[oi] == 0 {
            // Dead output: drop immediately instead of holding it until
            // the end of the run.
            stats.freed += 1;
        } else {
            env[oi] = Some(out);
        }
    }
    let outputs = jaxpr
        .outvars()
        .iter()
        .map(|v| {
            env[v.index()].clone().ok_or(IrError::InvalidVar {
                context: "eval output".into(),
                var: v.0,
            })
        })
        .collect::<Result<_>>()?;
    Ok((outputs, stats))
}

/// Evaluates a graph on concrete inputs, returning its outputs in order.
///
/// # Errors
///
/// See [`eval_with_stats`].
pub fn eval(jaxpr: &Jaxpr, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
    eval_with_stats(jaxpr, inputs).map(|(o, _)| o)
}

fn eval_prim_reference(prim: &Prim, inputs: &[&Tensor]) -> Result<Tensor> {
    if inputs.len() != prim.arity() {
        return Err(IrError::ArityMismatch {
            context: prim.name().into(),
            expected: prim.arity(),
            found: inputs.len(),
        });
    }
    match prim {
        Prim::MatMul => inputs[0].matmul_naive(inputs[1]),
        Prim::BatchMatMul => inputs[0].batch_matmul_naive(inputs[1]),
        Prim::Transpose => inputs[0].transpose_naive(),
        // Pre-optimization clones were deep copies.
        Prim::PipelineYield { .. } => Ok(inputs[0].deep_copy()),
        Prim::Reshape { shape } => Ok(inputs[0].reshape(shape.clone())?.deep_copy()),
        _ => eval_prim(prim, inputs),
    }
}

/// Evaluates a graph with the pre-optimization execution model: inputs
/// are deep-copied on entry, every equation allocates its output, and
/// matmul/transpose run on the naive serial kernels. Numerically
/// bit-identical to [`eval`]; used as the baseline in `step_time`.
///
/// # Errors
///
/// Same contract as [`eval`].
pub fn eval_reference(jaxpr: &Jaxpr, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
    if inputs.len() != jaxpr.invars().len() {
        return Err(IrError::ArityMismatch {
            context: "eval".into(),
            expected: jaxpr.invars().len(),
            found: inputs.len(),
        });
    }
    let mut env: Vec<Option<Tensor>> = vec![None; jaxpr.num_vars()];
    for (&v, t) in jaxpr.invars().iter().zip(inputs) {
        if t.shape() != jaxpr.shape(v) {
            return Err(IrError::ShapeMismatch {
                context: format!("eval input {v}"),
                expected: jaxpr.shape(v).clone(),
                found: t.shape().clone(),
            });
        }
        env[v.index()] = Some(t.deep_copy());
    }
    for eqn in jaxpr.eqns() {
        let operands: Vec<&Tensor> = eqn
            .inputs
            .iter()
            .map(|v| {
                env[v.index()].as_ref().ok_or(IrError::InvalidVar {
                    context: "eval".into(),
                    var: v.0,
                })
            })
            .collect::<Result<_>>()?;
        let out = eval_prim_reference(&eqn.prim, &operands)?;
        env[eqn.output.index()] = Some(out);
    }
    jaxpr
        .outvars()
        .iter()
        .map(|v| {
            env[v.index()]
                .as_ref()
                .map(Tensor::deep_copy)
                .ok_or(IrError::InvalidVar {
                    context: "eval output".into(),
                    var: v.0,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::rng::{Rng, SeedableRng, StdRng};
    use crate::shape::Shape;

    #[test]
    fn eval_mlp_forward() {
        let mut b = GraphBuilder::new();
        let x = b.input([1, 2]);
        let w = b.input([2, 2]);
        let h = b.emit(Prim::MatMul, &[x, w]).unwrap();
        let y = b.emit(Prim::Relu, &[h]).unwrap();
        let s = b
            .emit(
                Prim::ReduceSum {
                    axes: vec![0, 1],
                    keepdims: false,
                },
                &[y],
            )
            .unwrap();
        let j = b.finish(vec![s]).unwrap();
        let out = eval(
            &j,
            &[
                Tensor::from_vec([1, 2], vec![1.0, -2.0]).unwrap(),
                Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
            ],
        )
        .unwrap();
        // relu([1, -2]) = [1, 0]; sum = 1.
        assert_eq!(out[0].item().unwrap(), 1.0);
    }

    #[test]
    fn eval_checks_input_shapes() {
        let mut b = GraphBuilder::new();
        let x = b.input([2, 2]);
        let j = b.finish(vec![x]).unwrap();
        assert!(eval(&j, &[Tensor::zeros([3, 3])]).is_err());
        assert!(eval(&j, &[]).is_err());
    }

    #[test]
    fn fill_has_no_operands() {
        let p = Prim::Fill {
            value: 2.5,
            shape: Shape::new([2]),
        };
        let t = eval_prim(&p, &[]).unwrap();
        assert_eq!(t.data(), &[2.5, 2.5]);
    }

    #[test]
    fn yield_is_identity() {
        use crate::prim::YieldId;
        let p = Prim::PipelineYield {
            id: YieldId(0),
            backward: false,
        };
        let x = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let y = eval_prim(&p, &[&x]).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn step_matches_relu_derivative() {
        let p = Prim::Step;
        let x = Tensor::from_vec([3], vec![-1.0, 0.0, 2.0]).unwrap();
        let y = eval_prim(&p, &[&x]).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 1.0]);
    }

    fn mlp_graph() -> Jaxpr {
        let mut b = GraphBuilder::new();
        let x = b.input([4, 8]);
        let w1 = b.input([8, 8]);
        let w2 = b.input([8, 8]);
        let h = b.emit(Prim::MatMul, &[x, w1]).unwrap();
        let a = b.emit(Prim::Tanh, &[h]).unwrap();
        let h2 = b.emit(Prim::MatMul, &[a, w2]).unwrap();
        let a2 = b.emit(Prim::Gelu, &[h2]).unwrap();
        let s = b
            .emit(
                Prim::ReduceSum {
                    axes: vec![0, 1],
                    keepdims: false,
                },
                &[a2],
            )
            .unwrap();

        b.finish(vec![s]).unwrap()
    }

    fn mlp_inputs() -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(7);
        vec![
            Tensor::randn([4, 8], 1.0, &mut rng),
            Tensor::randn([8, 8], 0.5, &mut rng),
            Tensor::randn([8, 8], 0.5, &mut rng),
        ]
    }

    #[test]
    fn stats_count_inplace_reuse_and_frees() {
        let j = mlp_graph();
        let (_, stats) = eval_with_stats(&j, &mlp_inputs()).unwrap();
        // tanh steals matmul's fresh output; gelu steals the second
        // matmul's output.
        assert_eq!(stats.reused, 2, "{stats:?}");
        // Two matmuls + reduce allocate.
        assert_eq!(stats.allocated, 3, "{stats:?}");
        // Every intermediate (and each input at its last use) is dropped.
        assert!(stats.freed >= 4, "{stats:?}");
    }

    #[test]
    fn inplace_eval_never_mutates_caller_inputs() {
        let j = mlp_graph();
        let inputs = mlp_inputs();
        let snapshot: Vec<Tensor> = inputs.iter().map(Tensor::deep_copy).collect();
        let _ = eval_with_stats(&j, &inputs).unwrap();
        for (a, b) in inputs.iter().zip(&snapshot) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn eval_matches_reference_bitwise() {
        let j = mlp_graph();
        let inputs = mlp_inputs();
        let fast = eval(&j, &inputs).unwrap();
        let slow = eval_reference(&j, &inputs).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn duplicate_operands_in_one_eqn() {
        // y = x * x where the multiply is x's last use: the second
        // occurrence is taken, the first cloned; result must be exact.
        let mut b = GraphBuilder::new();
        let x = b.input([8]);
        let sq = b.emit(Prim::Mul, &[x, x]).unwrap();
        let j = b.finish(vec![sq]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::randn([8], 1.0, &mut rng);
        let want: Vec<f32> = t.data().iter().map(|&v| v * v).collect();
        let out = eval(&j, std::slice::from_ref(&t)).unwrap();
        assert_eq!(out[0].data(), &want[..]);
        // x itself is untouched.
        let _ = rng.next_u64();
        assert_eq!(t.numel(), 8);
    }

    /// Records every panel a [`PanelObserver`] sees, reassembling each
    /// streamed output for comparison against the unobserved run.
    struct Recorder {
        wants: Vec<usize>,
        begun: Vec<(usize, Shape)>,
        bufs: std::collections::HashMap<usize, Vec<f32>>,
    }

    impl PanelObserver for Recorder {
        fn wants(&mut self, out_idx: usize) -> bool {
            self.wants.contains(&out_idx)
        }
        fn begin(&mut self, out_idx: usize, shape: &Shape) {
            self.begun.push((out_idx, shape.clone()));
            self.bufs.insert(out_idx, vec![f32::NAN; shape.numel()]);
        }
        fn publish(&mut self, out_idx: usize, row0: usize, row_len: usize, data: &[f32]) {
            let buf = self.bufs.get_mut(&out_idx).unwrap();
            buf[row0 * row_len..row0 * row_len + data.len()].copy_from_slice(data);
        }
    }

    #[test]
    fn observed_eval_streams_matmul_outputs_bitwise() {
        // y1 = x @ w (direct matmul output), y2 = pad_last(a @ w2)
        // with the matmul consumed only by the pad (the fused case).
        let mut b = GraphBuilder::new();
        let x = b.input([70, 8]);
        let w = b.input([8, 4]);
        let w2 = b.input([4, 6]);
        let y1 = b.emit(Prim::MatMul, &[x, w]).unwrap();
        let a = b.emit(Prim::Tanh, &[y1]).unwrap();
        let h = b.emit(Prim::MatMul, &[a, w2]).unwrap();
        let y2 = b
            .emit(
                Prim::PadLast {
                    start: 6,
                    full: 12,
                    value: -0.0,
                },
                &[h],
            )
            .unwrap();
        let j = b.finish(vec![y1, y2]).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        let inputs = vec![
            Tensor::randn([70, 8], 1.0, &mut rng),
            Tensor::randn([8, 4], 0.5, &mut rng),
            Tensor::randn([4, 6], 0.5, &mut rng),
        ];
        let (want, want_stats) = eval_with_stats(&j, &inputs).unwrap();
        let mut rec = Recorder {
            wants: vec![0, 1],
            begun: Vec::new(),
            bufs: Default::default(),
        };
        let (got, got_stats) = eval_with_stats_observed(&j, &inputs, None, Some(&mut rec)).unwrap();
        assert_eq!(got_stats, want_stats, "observation changed allocator stats");
        for (o, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(a.data(), b.data(), "output {o} not bit-identical");
        }
        // Both outputs streamed: the direct matmul and the fused pad.
        assert_eq!(rec.begun.len(), 2, "{:?}", rec.begun);
        for (oi, shape) in &rec.begun {
            assert_eq!(shape, want[*oi].shape());
            assert_eq!(rec.bufs[oi], want[*oi].data(), "streamed output {oi}");
        }
    }

    #[test]
    fn outputs_survive_liveness_drops() {
        // A graph output consumed mid-graph must not be freed.
        let mut b = GraphBuilder::new();
        let x = b.input([4]);
        let y = b.emit(Prim::Scale(2.0), &[x]).unwrap();
        let z = b.emit(Prim::AddScalar(1.0), &[y]).unwrap();
        let j = b.finish(vec![y, z]).unwrap();
        let out = eval(&j, &[Tensor::ones([4])]).unwrap();
        assert_eq!(out[0].data(), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(out[1].data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn reshape_and_yield_are_zero_copy() {
        use crate::prim::YieldId;
        let mut b = GraphBuilder::new();
        let x = b.input([2, 6]);
        let r = b
            .emit(
                Prim::Reshape {
                    shape: Shape::new([3, 4]),
                },
                &[x],
            )
            .unwrap();
        let y = b
            .emit(
                Prim::PipelineYield {
                    id: YieldId(0),
                    backward: false,
                },
                &[r],
            )
            .unwrap();
        let j = b.finish(vec![y]).unwrap();
        let t = Tensor::ones([2, 6]);
        let (out, stats) = eval_with_stats(&j, std::slice::from_ref(&t)).unwrap();
        assert!(std::ptr::eq(t.data().as_ptr(), out[0].data().as_ptr()));
        assert_eq!(stats.allocated, 0);
        assert_eq!(stats.reused, 2);
    }
}
