//! CPU interpreter for [`Jaxpr`] graphs with buffer-liveness tracking.
//!
//! The interpreter mirrors the paper's buffer-deletion discipline
//! (§4.2–4.3) on a single device: before execution it computes a
//! last-use table over the graph, drops each intermediate buffer at its
//! last consuming equation, and lets elementwise primitives *steal* a
//! uniquely-owned operand buffer for in-place execution. Buffers that
//! arrived from the caller (or sit in an actor's object store) are
//! always aliased from outside the interpreter, so `Arc::get_mut` fails
//! on them and they are never mutated — only graph-local intermediates
//! are recycled.
//!
//! [`eval_reference`] preserves the pre-optimization execution model
//! (deep-copied inputs, naive serial kernels, copying yields) so
//! benchmarks can measure the speedup against an honest baseline;
//! [`set_reference_mode`] (or `RAXPP_REFERENCE=1`) routes [`eval`]
//! through it globally.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use crate::error::{IrError, Result};
use crate::graph::Jaxpr;
use crate::prim::Prim;
use crate::tensor::{gelu, gelu_grad, Tensor};

/// Buffer-allocator counters for one [`eval_with_stats`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Output buffers freshly allocated.
    pub allocated: u64,
    /// Outputs that reused an operand buffer in place or aliased it
    /// zero-copy (reshape, pipeline yield).
    pub reused: u64,
    /// Intermediate buffers dropped at their last use.
    pub freed: u64,
}

impl EvalStats {
    /// Accumulates another run's counters into this one.
    pub fn merge(&mut self, other: &EvalStats) {
        self.allocated += other.allocated;
        self.reused += other.reused;
        self.freed += other.freed;
    }
}

static REFERENCE: AtomicBool = AtomicBool::new(false);
static REFERENCE_ENV: OnceLock<bool> = OnceLock::new();

/// Globally routes [`eval`] through [`eval_reference`] (the pre-optimization
/// deep-copy + naive-kernel execution model). Used by benchmarks to measure
/// the optimized path against an honest baseline.
pub fn set_reference_mode(on: bool) {
    REFERENCE.store(on, Ordering::SeqCst);
}

fn reference_mode() -> bool {
    REFERENCE.load(Ordering::SeqCst)
        || *REFERENCE_ENV.get_or_init(|| {
            std::env::var("RAXPP_REFERENCE")
                .map(|v| !v.is_empty() && v != "0")
                .unwrap_or(false)
        })
}

/// Evaluates a single primitive on concrete tensors.
///
/// # Errors
///
/// Returns arity/shape errors when operands are invalid for `prim`.
pub fn eval_prim(prim: &Prim, inputs: &[&Tensor]) -> Result<Tensor> {
    if inputs.len() != prim.arity() {
        return Err(IrError::ArityMismatch {
            context: prim.name().into(),
            expected: prim.arity(),
            found: inputs.len(),
        });
    }
    match prim {
        Prim::Add => inputs[0].zip(inputs[1], |a, b| a + b),
        Prim::Sub => inputs[0].zip(inputs[1], |a, b| a - b),
        Prim::Mul => inputs[0].zip(inputs[1], |a, b| a * b),
        Prim::Div => inputs[0].zip(inputs[1], |a, b| a / b),
        Prim::Neg => Ok(inputs[0].map(|x| -x)),
        Prim::Scale(c) => Ok(inputs[0].map(|x| x * c)),
        Prim::AddScalar(c) => Ok(inputs[0].map(|x| x + c)),
        Prim::MatMul => inputs[0].matmul(inputs[1]),
        Prim::BatchMatMul => inputs[0].batch_matmul(inputs[1]),
        Prim::Transpose => inputs[0].transpose(),
        Prim::Permute { perm } => inputs[0].permute(perm),
        Prim::Relu => Ok(inputs[0].map(|x| x.max(0.0))),
        Prim::Gelu => Ok(inputs[0].map(gelu)),
        Prim::Tanh => Ok(inputs[0].map(f32::tanh)),
        Prim::Exp => Ok(inputs[0].map(f32::exp)),
        Prim::Log => Ok(inputs[0].map(f32::ln)),
        Prim::Sqrt => Ok(inputs[0].map(f32::sqrt)),
        Prim::Rsqrt => Ok(inputs[0].map(|x| 1.0 / x.sqrt())),
        Prim::Step => Ok(inputs[0].map(|x| if x > 0.0 { 1.0 } else { 0.0 })),
        Prim::GeluGrad => Ok(inputs[0].map(gelu_grad)),
        Prim::ReduceSum { axes, keepdims } => inputs[0].reduce_sum(axes, *keepdims),
        Prim::ReduceMax { axes, keepdims } => inputs[0].reduce_max(axes, *keepdims),
        Prim::Broadcast { shape } => inputs[0].broadcast_to(shape.clone()),
        Prim::Reshape { shape } => inputs[0].reshape(shape.clone()),
        Prim::Fill { value, shape } => Ok(Tensor::full(shape.clone(), *value)),
        Prim::SliceLast { start, len } => {
            let r = inputs[0].shape().rank().max(1);
            inputs[0].slice_dim(r - 1, *start, *len)
        }
        Prim::PadLast { start, full, value } => inputs[0].pad_last(*start, *full, *value),
        // Yields are pure identity markers at run time.
        Prim::PipelineYield { .. } => Ok(inputs[0].clone()),
    }
}

/// Evaluates a primitive on *owned* operands, writing in place when an
/// operand buffer is uniquely held and aliasing zero-copy where the op
/// permits it. Numerically bit-identical to [`eval_prim`].
fn eval_prim_owned(prim: &Prim, mut inputs: Vec<Tensor>, stats: &mut EvalStats) -> Result<Tensor> {
    if inputs.len() != prim.arity() {
        return Err(IrError::ArityMismatch {
            context: prim.name().into(),
            expected: prim.arity(),
            found: inputs.len(),
        });
    }
    macro_rules! unary {
        ($f:expr) => {{
            let (t, reused) = inputs.pop().expect("arity checked").map_into($f);
            if reused {
                stats.reused += 1;
            } else {
                stats.allocated += 1;
            }
            Ok(t)
        }};
    }
    macro_rules! binary {
        ($f:expr) => {{
            let b = inputs.pop().expect("arity checked");
            let a = inputs.pop().expect("arity checked");
            let (t, reused) = a.zip_into(b, $f)?;
            if reused {
                stats.reused += 1;
            } else {
                stats.allocated += 1;
            }
            Ok(t)
        }};
    }
    match prim {
        Prim::Add => binary!(|a, b| a + b),
        Prim::Sub => binary!(|a, b| a - b),
        Prim::Mul => binary!(|a, b| a * b),
        Prim::Div => binary!(|a, b| a / b),
        Prim::Neg => unary!(|x| -x),
        Prim::Scale(c) => {
            let c = *c;
            unary!(move |x| x * c)
        }
        Prim::AddScalar(c) => {
            let c = *c;
            unary!(move |x| x + c)
        }
        Prim::Relu => unary!(|x: f32| x.max(0.0)),
        Prim::Gelu => unary!(gelu),
        Prim::Tanh => unary!(f32::tanh),
        Prim::Exp => unary!(f32::exp),
        Prim::Log => unary!(f32::ln),
        Prim::Sqrt => unary!(f32::sqrt),
        Prim::Rsqrt => unary!(|x: f32| 1.0 / x.sqrt()),
        Prim::Step => unary!(|x| if x > 0.0 { 1.0 } else { 0.0 }),
        Prim::GeluGrad => unary!(gelu_grad),
        // Zero-copy aliases: no buffer traffic at all.
        Prim::Reshape { shape } => {
            stats.reused += 1;
            inputs[0].reshape(shape.clone())
        }
        Prim::PipelineYield { .. } => {
            stats.reused += 1;
            Ok(inputs.pop().expect("arity checked"))
        }
        // Layout- and shape-changing ops allocate a fresh output.
        _ => {
            stats.allocated += 1;
            let refs: Vec<&Tensor> = inputs.iter().collect();
            eval_prim(prim, &refs)
        }
    }
}

/// For each variable, the 1-based index of the equation that consumes it
/// last; `usize::MAX` for graph outputs (never dropped), 0 for variables
/// that are never consumed.
fn last_use_table(jaxpr: &Jaxpr) -> Vec<usize> {
    let mut last_use = vec![0usize; jaxpr.num_vars()];
    for (i, eqn) in jaxpr.eqns().iter().enumerate() {
        for v in &eqn.inputs {
            last_use[v.index()] = i + 1;
        }
    }
    for v in jaxpr.outvars() {
        last_use[v.index()] = usize::MAX;
    }
    last_use
}

/// A per-equation observer for [`eval_with_stats_hooked`]: called after
/// each equation with `(equation_index, primitive_name, start, end)`.
///
/// Used by the runtime's step tracer to record op-level sub-spans.
/// Timestamps are taken only when a hook is installed, so hookless
/// evaluation pays nothing.
pub type EvalHook<'a> = &'a mut dyn FnMut(usize, &'static str, Instant, Instant);

/// Evaluates a graph on concrete inputs, returning outputs and
/// buffer-allocator statistics.
///
/// Intermediates are dropped at their last use and elementwise ops run
/// in place on uniquely-owned buffers; results are bit-identical to the
/// allocate-everything path because only buffer *lifetimes*, never
/// reduction orders, change.
///
/// # Errors
///
/// Returns an arity error when `inputs.len()` differs from the graph's
/// input count, a shape error when an input tensor's shape differs from
/// the declared one, or any primitive evaluation error.
pub fn eval_with_stats(jaxpr: &Jaxpr, inputs: &[Tensor]) -> Result<(Vec<Tensor>, EvalStats)> {
    eval_with_stats_hooked(jaxpr, inputs, None)
}

/// [`eval_with_stats`] with an optional per-equation observer hook.
///
/// The hook only *observes* (indices, primitive names, timestamps); it
/// cannot change which kernels run or in what order, so tracing cannot
/// perturb the bit-compatibility contract. Reference mode ignores the
/// hook (the baseline interpreter has no per-equation instrumentation).
///
/// # Errors
///
/// See [`eval_with_stats`].
pub fn eval_with_stats_hooked(
    jaxpr: &Jaxpr,
    inputs: &[Tensor],
    mut hook: Option<EvalHook<'_>>,
) -> Result<(Vec<Tensor>, EvalStats)> {
    if reference_mode() {
        return eval_reference(jaxpr, inputs).map(|o| (o, EvalStats::default()));
    }
    if inputs.len() != jaxpr.invars().len() {
        return Err(IrError::ArityMismatch {
            context: "eval".into(),
            expected: jaxpr.invars().len(),
            found: inputs.len(),
        });
    }
    let mut stats = EvalStats::default();
    let last_use = last_use_table(jaxpr);
    let mut env: Vec<Option<Tensor>> = vec![None; jaxpr.num_vars()];
    for (&v, t) in jaxpr.invars().iter().zip(inputs) {
        if t.shape() != jaxpr.shape(v) {
            return Err(IrError::ShapeMismatch {
                context: format!("eval input {v}"),
                expected: jaxpr.shape(v).clone(),
                found: t.shape().clone(),
            });
        }
        // O(1) handle copy; the caller keeps its reference, so this
        // buffer can never be stolen for in-place writes.
        env[v.index()] = Some(t.clone());
    }
    for (i, eqn) in jaxpr.eqns().iter().enumerate() {
        let idx = i + 1;
        let mut operands: Vec<Tensor> = Vec::with_capacity(eqn.inputs.len());
        for (j, v) in eqn.inputs.iter().enumerate() {
            let vi = v.index();
            // Take (move out of the environment) at the variable's last
            // use — and, within this equation, only at its last
            // occurrence so duplicate operands stay consistent.
            let recurs_later = eqn.inputs[j + 1..].iter().any(|w| w.index() == vi);
            let t = if last_use[vi] == idx && !recurs_later {
                stats.freed += 1;
                env[vi].take()
            } else {
                env[vi].clone()
            };
            operands.push(t.ok_or(IrError::InvalidVar {
                context: "eval".into(),
                var: v.0,
            })?);
        }
        let t0 = hook.as_ref().map(|_| Instant::now());
        let out = eval_prim_owned(&eqn.prim, operands, &mut stats)?;
        if let (Some(h), Some(t0)) = (hook.as_mut(), t0) {
            h(i, eqn.prim.name(), t0, Instant::now());
        }
        let oi = eqn.output.index();
        if last_use[oi] == 0 {
            // Dead output: drop immediately instead of holding it until
            // the end of the run.
            stats.freed += 1;
        } else {
            env[oi] = Some(out);
        }
    }
    let outputs = jaxpr
        .outvars()
        .iter()
        .map(|v| {
            env[v.index()].clone().ok_or(IrError::InvalidVar {
                context: "eval output".into(),
                var: v.0,
            })
        })
        .collect::<Result<_>>()?;
    Ok((outputs, stats))
}

/// Evaluates a graph on concrete inputs, returning its outputs in order.
///
/// # Errors
///
/// See [`eval_with_stats`].
pub fn eval(jaxpr: &Jaxpr, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
    eval_with_stats(jaxpr, inputs).map(|(o, _)| o)
}

fn eval_prim_reference(prim: &Prim, inputs: &[&Tensor]) -> Result<Tensor> {
    if inputs.len() != prim.arity() {
        return Err(IrError::ArityMismatch {
            context: prim.name().into(),
            expected: prim.arity(),
            found: inputs.len(),
        });
    }
    match prim {
        Prim::MatMul => inputs[0].matmul_naive(inputs[1]),
        Prim::BatchMatMul => inputs[0].batch_matmul_naive(inputs[1]),
        Prim::Transpose => inputs[0].transpose_naive(),
        // Pre-optimization clones were deep copies.
        Prim::PipelineYield { .. } => Ok(inputs[0].deep_copy()),
        Prim::Reshape { shape } => Ok(inputs[0].reshape(shape.clone())?.deep_copy()),
        _ => eval_prim(prim, inputs),
    }
}

/// Evaluates a graph with the pre-optimization execution model: inputs
/// are deep-copied on entry, every equation allocates its output, and
/// matmul/transpose run on the naive serial kernels. Numerically
/// bit-identical to [`eval`]; used as the baseline in `step_time`.
///
/// # Errors
///
/// Same contract as [`eval`].
pub fn eval_reference(jaxpr: &Jaxpr, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
    if inputs.len() != jaxpr.invars().len() {
        return Err(IrError::ArityMismatch {
            context: "eval".into(),
            expected: jaxpr.invars().len(),
            found: inputs.len(),
        });
    }
    let mut env: Vec<Option<Tensor>> = vec![None; jaxpr.num_vars()];
    for (&v, t) in jaxpr.invars().iter().zip(inputs) {
        if t.shape() != jaxpr.shape(v) {
            return Err(IrError::ShapeMismatch {
                context: format!("eval input {v}"),
                expected: jaxpr.shape(v).clone(),
                found: t.shape().clone(),
            });
        }
        env[v.index()] = Some(t.deep_copy());
    }
    for eqn in jaxpr.eqns() {
        let operands: Vec<&Tensor> = eqn
            .inputs
            .iter()
            .map(|v| {
                env[v.index()].as_ref().ok_or(IrError::InvalidVar {
                    context: "eval".into(),
                    var: v.0,
                })
            })
            .collect::<Result<_>>()?;
        let out = eval_prim_reference(&eqn.prim, &operands)?;
        env[eqn.output.index()] = Some(out);
    }
    jaxpr
        .outvars()
        .iter()
        .map(|v| {
            env[v.index()]
                .as_ref()
                .map(Tensor::deep_copy)
                .ok_or(IrError::InvalidVar {
                    context: "eval output".into(),
                    var: v.0,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::rng::{Rng, SeedableRng, StdRng};
    use crate::shape::Shape;

    #[test]
    fn eval_mlp_forward() {
        let mut b = GraphBuilder::new();
        let x = b.input([1, 2]);
        let w = b.input([2, 2]);
        let h = b.emit(Prim::MatMul, &[x, w]).unwrap();
        let y = b.emit(Prim::Relu, &[h]).unwrap();
        let s = b
            .emit(
                Prim::ReduceSum {
                    axes: vec![0, 1],
                    keepdims: false,
                },
                &[y],
            )
            .unwrap();
        let j = b.finish(vec![s]).unwrap();
        let out = eval(
            &j,
            &[
                Tensor::from_vec([1, 2], vec![1.0, -2.0]).unwrap(),
                Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
            ],
        )
        .unwrap();
        // relu([1, -2]) = [1, 0]; sum = 1.
        assert_eq!(out[0].item().unwrap(), 1.0);
    }

    #[test]
    fn eval_checks_input_shapes() {
        let mut b = GraphBuilder::new();
        let x = b.input([2, 2]);
        let j = b.finish(vec![x]).unwrap();
        assert!(eval(&j, &[Tensor::zeros([3, 3])]).is_err());
        assert!(eval(&j, &[]).is_err());
    }

    #[test]
    fn fill_has_no_operands() {
        let p = Prim::Fill {
            value: 2.5,
            shape: Shape::new([2]),
        };
        let t = eval_prim(&p, &[]).unwrap();
        assert_eq!(t.data(), &[2.5, 2.5]);
    }

    #[test]
    fn yield_is_identity() {
        use crate::prim::YieldId;
        let p = Prim::PipelineYield {
            id: YieldId(0),
            backward: false,
        };
        let x = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let y = eval_prim(&p, &[&x]).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn step_matches_relu_derivative() {
        let p = Prim::Step;
        let x = Tensor::from_vec([3], vec![-1.0, 0.0, 2.0]).unwrap();
        let y = eval_prim(&p, &[&x]).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 1.0]);
    }

    fn mlp_graph() -> Jaxpr {
        let mut b = GraphBuilder::new();
        let x = b.input([4, 8]);
        let w1 = b.input([8, 8]);
        let w2 = b.input([8, 8]);
        let h = b.emit(Prim::MatMul, &[x, w1]).unwrap();
        let a = b.emit(Prim::Tanh, &[h]).unwrap();
        let h2 = b.emit(Prim::MatMul, &[a, w2]).unwrap();
        let a2 = b.emit(Prim::Gelu, &[h2]).unwrap();
        let s = b
            .emit(
                Prim::ReduceSum {
                    axes: vec![0, 1],
                    keepdims: false,
                },
                &[a2],
            )
            .unwrap();

        b.finish(vec![s]).unwrap()
    }

    fn mlp_inputs() -> Vec<Tensor> {
        let mut rng = StdRng::seed_from_u64(7);
        vec![
            Tensor::randn([4, 8], 1.0, &mut rng),
            Tensor::randn([8, 8], 0.5, &mut rng),
            Tensor::randn([8, 8], 0.5, &mut rng),
        ]
    }

    #[test]
    fn stats_count_inplace_reuse_and_frees() {
        let j = mlp_graph();
        let (_, stats) = eval_with_stats(&j, &mlp_inputs()).unwrap();
        // tanh steals matmul's fresh output; gelu steals the second
        // matmul's output.
        assert_eq!(stats.reused, 2, "{stats:?}");
        // Two matmuls + reduce allocate.
        assert_eq!(stats.allocated, 3, "{stats:?}");
        // Every intermediate (and each input at its last use) is dropped.
        assert!(stats.freed >= 4, "{stats:?}");
    }

    #[test]
    fn inplace_eval_never_mutates_caller_inputs() {
        let j = mlp_graph();
        let inputs = mlp_inputs();
        let snapshot: Vec<Tensor> = inputs.iter().map(Tensor::deep_copy).collect();
        let _ = eval_with_stats(&j, &inputs).unwrap();
        for (a, b) in inputs.iter().zip(&snapshot) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn eval_matches_reference_bitwise() {
        let j = mlp_graph();
        let inputs = mlp_inputs();
        let fast = eval(&j, &inputs).unwrap();
        let slow = eval_reference(&j, &inputs).unwrap();
        assert_eq!(fast.len(), slow.len());
        for (a, b) in fast.iter().zip(&slow) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn duplicate_operands_in_one_eqn() {
        // y = x * x where the multiply is x's last use: the second
        // occurrence is taken, the first cloned; result must be exact.
        let mut b = GraphBuilder::new();
        let x = b.input([8]);
        let sq = b.emit(Prim::Mul, &[x, x]).unwrap();
        let j = b.finish(vec![sq]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tensor::randn([8], 1.0, &mut rng);
        let want: Vec<f32> = t.data().iter().map(|&v| v * v).collect();
        let out = eval(&j, std::slice::from_ref(&t)).unwrap();
        assert_eq!(out[0].data(), &want[..]);
        // x itself is untouched.
        let _ = rng.next_u64();
        assert_eq!(t.numel(), 8);
    }

    #[test]
    fn outputs_survive_liveness_drops() {
        // A graph output consumed mid-graph must not be freed.
        let mut b = GraphBuilder::new();
        let x = b.input([4]);
        let y = b.emit(Prim::Scale(2.0), &[x]).unwrap();
        let z = b.emit(Prim::AddScalar(1.0), &[y]).unwrap();
        let j = b.finish(vec![y, z]).unwrap();
        let out = eval(&j, &[Tensor::ones([4])]).unwrap();
        assert_eq!(out[0].data(), &[2.0, 2.0, 2.0, 2.0]);
        assert_eq!(out[1].data(), &[3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn reshape_and_yield_are_zero_copy() {
        use crate::prim::YieldId;
        let mut b = GraphBuilder::new();
        let x = b.input([2, 6]);
        let r = b
            .emit(
                Prim::Reshape {
                    shape: Shape::new([3, 4]),
                },
                &[x],
            )
            .unwrap();
        let y = b
            .emit(
                Prim::PipelineYield {
                    id: YieldId(0),
                    backward: false,
                },
                &[r],
            )
            .unwrap();
        let j = b.finish(vec![y]).unwrap();
        let t = Tensor::ones([2, 6]);
        let (out, stats) = eval_with_stats(&j, std::slice::from_ref(&t)).unwrap();
        assert!(std::ptr::eq(t.data().as_ptr(), out[0].data().as_ptr()));
        assert_eq!(stats.allocated, 0);
        assert_eq!(stats.reused, 2);
    }
}
