//! Reference CPU interpreter for [`Jaxpr`] graphs.

use crate::error::{IrError, Result};
use crate::graph::Jaxpr;
use crate::prim::Prim;
use crate::tensor::{gelu, gelu_grad, Tensor};

/// Evaluates a single primitive on concrete tensors.
///
/// # Errors
///
/// Returns arity/shape errors when operands are invalid for `prim`.
pub fn eval_prim(prim: &Prim, inputs: &[&Tensor]) -> Result<Tensor> {
    if inputs.len() != prim.arity() {
        return Err(IrError::ArityMismatch {
            context: prim.name().into(),
            expected: prim.arity(),
            found: inputs.len(),
        });
    }
    match prim {
        Prim::Add => inputs[0].zip(inputs[1], |a, b| a + b),
        Prim::Sub => inputs[0].zip(inputs[1], |a, b| a - b),
        Prim::Mul => inputs[0].zip(inputs[1], |a, b| a * b),
        Prim::Div => inputs[0].zip(inputs[1], |a, b| a / b),
        Prim::Neg => Ok(inputs[0].map(|x| -x)),
        Prim::Scale(c) => Ok(inputs[0].map(|x| x * c)),
        Prim::AddScalar(c) => Ok(inputs[0].map(|x| x + c)),
        Prim::MatMul => inputs[0].matmul(inputs[1]),
        Prim::BatchMatMul => inputs[0].batch_matmul(inputs[1]),
        Prim::Transpose => inputs[0].transpose(),
        Prim::Permute { perm } => inputs[0].permute(perm),
        Prim::Relu => Ok(inputs[0].map(|x| x.max(0.0))),
        Prim::Gelu => Ok(inputs[0].map(gelu)),
        Prim::Tanh => Ok(inputs[0].map(f32::tanh)),
        Prim::Exp => Ok(inputs[0].map(f32::exp)),
        Prim::Log => Ok(inputs[0].map(f32::ln)),
        Prim::Sqrt => Ok(inputs[0].map(f32::sqrt)),
        Prim::Rsqrt => Ok(inputs[0].map(|x| 1.0 / x.sqrt())),
        Prim::Step => Ok(inputs[0].map(|x| if x > 0.0 { 1.0 } else { 0.0 })),
        Prim::GeluGrad => Ok(inputs[0].map(gelu_grad)),
        Prim::ReduceSum { axes, keepdims } => inputs[0].reduce_sum(axes, *keepdims),
        Prim::ReduceMax { axes, keepdims } => inputs[0].reduce_max(axes, *keepdims),
        Prim::Broadcast { shape } => inputs[0].broadcast_to(shape.clone()),
        Prim::Reshape { shape } => inputs[0].reshape(shape.clone()),
        Prim::Fill { value, shape } => Ok(Tensor::full(shape.clone(), *value)),
        // Yields are pure identity markers at run time.
        Prim::PipelineYield { .. } => Ok(inputs[0].clone()),
    }
}

/// Evaluates a graph on concrete inputs, returning its outputs in order.
///
/// # Errors
///
/// Returns an arity error when `inputs.len()` differs from the graph's
/// input count, a shape error when an input tensor's shape differs from
/// the declared one, or any primitive evaluation error.
pub fn eval(jaxpr: &Jaxpr, inputs: &[Tensor]) -> Result<Vec<Tensor>> {
    if inputs.len() != jaxpr.invars().len() {
        return Err(IrError::ArityMismatch {
            context: "eval".into(),
            expected: jaxpr.invars().len(),
            found: inputs.len(),
        });
    }
    let mut env: Vec<Option<Tensor>> = vec![None; jaxpr.num_vars()];
    for (&v, t) in jaxpr.invars().iter().zip(inputs) {
        if t.shape() != jaxpr.shape(v) {
            return Err(IrError::ShapeMismatch {
                context: format!("eval input {v}"),
                expected: jaxpr.shape(v).clone(),
                found: t.shape().clone(),
            });
        }
        env[v.index()] = Some(t.clone());
    }
    for eqn in jaxpr.eqns() {
        let operands: Vec<&Tensor> = eqn
            .inputs
            .iter()
            .map(|v| {
                env[v.index()].as_ref().ok_or(IrError::InvalidVar {
                    context: "eval".into(),
                    var: v.0,
                })
            })
            .collect::<Result<_>>()?;
        let out = eval_prim(&eqn.prim, &operands)?;
        env[eqn.output.index()] = Some(out);
    }
    jaxpr
        .outvars()
        .iter()
        .map(|v| {
            env[v.index()].clone().ok_or(IrError::InvalidVar {
                context: "eval output".into(),
                var: v.0,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphBuilder;
    use crate::shape::Shape;

    #[test]
    fn eval_mlp_forward() {
        let mut b = GraphBuilder::new();
        let x = b.input([1, 2]);
        let w = b.input([2, 2]);
        let h = b.emit(Prim::MatMul, &[x, w]).unwrap();
        let y = b.emit(Prim::Relu, &[h]).unwrap();
        let s = b
            .emit(
                Prim::ReduceSum {
                    axes: vec![0, 1],
                    keepdims: false,
                },
                &[y],
            )
            .unwrap();
        let j = b.finish(vec![s]).unwrap();
        let out = eval(
            &j,
            &[
                Tensor::from_vec([1, 2], vec![1.0, -2.0]).unwrap(),
                Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
            ],
        )
        .unwrap();
        // relu([1, -2]) = [1, 0]; sum = 1.
        assert_eq!(out[0].item().unwrap(), 1.0);
    }

    #[test]
    fn eval_checks_input_shapes() {
        let mut b = GraphBuilder::new();
        let x = b.input([2, 2]);
        let j = b.finish(vec![x]).unwrap();
        assert!(eval(&j, &[Tensor::zeros([3, 3])]).is_err());
        assert!(eval(&j, &[]).is_err());
    }

    #[test]
    fn fill_has_no_operands() {
        let p = Prim::Fill {
            value: 2.5,
            shape: Shape::new([2]),
        };
        let t = eval_prim(&p, &[]).unwrap();
        assert_eq!(t.data(), &[2.5, 2.5]);
    }

    #[test]
    fn yield_is_identity() {
        use crate::prim::YieldId;
        let p = Prim::PipelineYield {
            id: YieldId(0),
            backward: false,
        };
        let x = Tensor::from_vec([2], vec![1.0, 2.0]).unwrap();
        let y = eval_prim(&p, &[&x]).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn step_matches_relu_derivative() {
        let p = Prim::Step;
        let x = Tensor::from_vec([3], vec![-1.0, 0.0, 2.0]).unwrap();
        let y = eval_prim(&p, &[&x]).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 1.0]);
    }
}
