//! Operator-overloading tracer: write model code against [`TracedTensor`]
//! handles and get a [`Jaxpr`] out, mirroring how JAX traces Python
//! functions (paper §3, Figure 4).
//!
//! # Examples
//!
//! ```
//! use raxpp_ir::TraceCtx;
//!
//! let ctx = TraceCtx::new();
//! let x = ctx.input([4, 8]);
//! let w1 = ctx.input([8, 16]);
//! let w2 = ctx.input([16, 2]);
//! let h = x.matmul(&w1)?.relu();
//! let h = ctx.pipeline_yield(&h); // end of stage 0
//! let y = h.matmul(&w2)?;
//! let loss = y.mul(&y)?.sum();
//! let jaxpr = ctx.finish(&[loss])?;
//! assert_eq!(jaxpr.invars().len(), 3);
//! # Ok::<(), raxpp_ir::IrError>(())
//! ```

use std::cell::RefCell;
use std::rc::Rc;

use crate::error::Result;
use crate::graph::{GraphBuilder, Jaxpr, VarId};
use crate::prim::{Prim, YieldId};
use crate::shape::Shape;

#[derive(Debug, Default)]
struct TraceState {
    builder: GraphBuilder,
    next_yield: u32,
}

/// A tracing context. Clones share the same underlying graph.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    state: Rc<RefCell<TraceState>>,
}

impl TraceCtx {
    /// Creates a fresh, empty tracing context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a graph input (model parameter or data batch) and returns
    /// its traced handle.
    pub fn input(&self, shape: impl Into<Shape>) -> TracedTensor {
        let id = self.state.borrow_mut().builder.input(shape);
        TracedTensor {
            ctx: self.clone(),
            id,
        }
    }

    /// Emits a constant-filled tensor.
    pub fn fill(&self, shape: impl Into<Shape>, value: f32) -> TracedTensor {
        let prim = Prim::Fill {
            value,
            shape: shape.into(),
        };
        self.emit(prim, &[]).expect("fill cannot fail")
    }

    /// Marks the end of the current pipeline stage (paper §3.2):
    /// computation that `x` depends on belongs to the closing stage; the
    /// returned value belongs to the next stage.
    pub fn pipeline_yield(&self, x: &TracedTensor) -> TracedTensor {
        let id = {
            let mut st = self.state.borrow_mut();
            let y = YieldId(st.next_yield);
            st.next_yield += 1;
            y
        };
        self.emit(
            Prim::PipelineYield {
                id,
                backward: false,
            },
            &[x.id],
        )
        .expect("yield is identity-shaped")
    }

    /// Number of `pipeline_yield` markers traced so far. The traced
    /// program therefore has `num_yields() + 1` logical stages.
    pub fn num_yields(&self) -> u32 {
        self.state.borrow().next_yield
    }

    fn emit(&self, prim: Prim, inputs: &[VarId]) -> Result<TracedTensor> {
        let id = self.state.borrow_mut().builder.emit(prim, inputs)?;
        Ok(TracedTensor {
            ctx: self.clone(),
            id,
        })
    }

    /// Finalizes tracing with the given outputs.
    ///
    /// # Errors
    ///
    /// Propagates graph validation errors.
    pub fn finish(&self, outputs: &[TracedTensor]) -> Result<Jaxpr> {
        let state = std::mem::take(&mut *self.state.borrow_mut());
        state.builder.finish(outputs.iter().map(|t| t.id).collect())
    }
}

/// A handle to a traced value; operations on it append IR equations.
///
/// Handles are tied to the [`TraceCtx`] that created them.
#[derive(Debug, Clone)]
pub struct TracedTensor {
    ctx: TraceCtx,
    id: VarId,
}

impl TracedTensor {
    /// The underlying IR variable.
    pub fn var(&self) -> VarId {
        self.id
    }

    /// The traced value's shape.
    pub fn shape(&self) -> Shape {
        self.ctx.state.borrow().builder.shape(self.id).clone()
    }

    fn unary(&self, prim: Prim) -> TracedTensor {
        self.ctx
            .emit(prim, &[self.id])
            .expect("unary ops preserve shape")
    }

    fn binary(&self, prim: Prim, rhs: &TracedTensor) -> Result<TracedTensor> {
        self.ctx.emit(prim, &[self.id, rhs.id])
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operands differ in shape (broadcast
    /// explicitly with [`TracedTensor::broadcast_to`] first).
    pub fn add(&self, rhs: &TracedTensor) -> Result<TracedTensor> {
        self.binary(Prim::Add, rhs)
    }

    /// Elementwise subtraction.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operands differ in shape.
    pub fn sub(&self, rhs: &TracedTensor) -> Result<TracedTensor> {
        self.binary(Prim::Sub, rhs)
    }

    /// Elementwise multiplication.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operands differ in shape.
    pub fn mul(&self, rhs: &TracedTensor) -> Result<TracedTensor> {
        self.binary(Prim::Mul, rhs)
    }

    /// Elementwise division.
    ///
    /// # Errors
    ///
    /// Returns a shape error when the operands differ in shape.
    pub fn div(&self, rhs: &TracedTensor) -> Result<TracedTensor> {
        self.binary(Prim::Div, rhs)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> TracedTensor {
        self.unary(Prim::Neg)
    }

    /// Multiplication by a compile-time scalar.
    pub fn scale(&self, c: f32) -> TracedTensor {
        self.unary(Prim::Scale(c))
    }

    /// Addition of a compile-time scalar.
    pub fn add_scalar(&self, c: f32) -> TracedTensor {
        self.unary(Prim::AddScalar(c))
    }

    /// 2-D matrix multiply.
    ///
    /// # Errors
    ///
    /// Returns a rank/shape error for non-2-D operands or a contraction
    /// mismatch.
    pub fn matmul(&self, rhs: &TracedTensor) -> Result<TracedTensor> {
        self.binary(Prim::MatMul, rhs)
    }

    /// Batched matrix multiply `[b…, m, k] @ [b…, k, n]`.
    ///
    /// # Errors
    ///
    /// Returns a rank/shape error for rank < 3 operands, mismatched batch
    /// dims, or a contraction mismatch.
    pub fn bmm(&self, rhs: &TracedTensor) -> Result<TracedTensor> {
        self.binary(Prim::BatchMatMul, rhs)
    }

    /// Transpose of the last two dimensions (rank ≥ 2).
    ///
    /// # Errors
    ///
    /// Returns a rank error for rank < 2 operands.
    pub fn t(&self) -> Result<TracedTensor> {
        self.ctx.emit(Prim::Transpose, &[self.id])
    }

    /// General axis permutation.
    ///
    /// # Errors
    ///
    /// Returns an error unless `perm` is a permutation of the axes.
    pub fn permute(&self, perm: &[usize]) -> Result<TracedTensor> {
        self.ctx.emit(
            Prim::Permute {
                perm: perm.to_vec(),
            },
            &[self.id],
        )
    }

    /// ReLU activation.
    pub fn relu(&self) -> TracedTensor {
        self.unary(Prim::Relu)
    }

    /// GELU activation.
    pub fn gelu(&self) -> TracedTensor {
        self.unary(Prim::Gelu)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> TracedTensor {
        self.unary(Prim::Tanh)
    }

    /// Elementwise exponential.
    pub fn exp(&self) -> TracedTensor {
        self.unary(Prim::Exp)
    }

    /// Elementwise natural logarithm.
    pub fn log(&self) -> TracedTensor {
        self.unary(Prim::Log)
    }

    /// Elementwise square root.
    pub fn sqrt(&self) -> TracedTensor {
        self.unary(Prim::Sqrt)
    }

    /// Elementwise reciprocal square root.
    pub fn rsqrt(&self) -> TracedTensor {
        self.unary(Prim::Rsqrt)
    }

    /// Sum over the given axes.
    ///
    /// # Errors
    ///
    /// Returns an axis error for out-of-range axes.
    pub fn reduce_sum(&self, axes: &[usize], keepdims: bool) -> Result<TracedTensor> {
        self.ctx.emit(
            Prim::ReduceSum {
                axes: axes.to_vec(),
                keepdims,
            },
            &[self.id],
        )
    }

    /// Maximum over the given axes (stop-gradient).
    ///
    /// # Errors
    ///
    /// Returns an axis error for out-of-range axes.
    pub fn reduce_max(&self, axes: &[usize], keepdims: bool) -> Result<TracedTensor> {
        self.ctx.emit(
            Prim::ReduceMax {
                axes: axes.to_vec(),
                keepdims,
            },
            &[self.id],
        )
    }

    /// Sum of all elements, producing a scalar.
    pub fn sum(&self) -> TracedTensor {
        let axes: Vec<usize> = (0..self.shape().rank()).collect();
        self.reduce_sum(&axes, false)
            .expect("full reduction is always valid")
    }

    /// Mean of all elements, producing a scalar.
    pub fn mean(&self) -> TracedTensor {
        let n = self.shape().numel().max(1) as f32;
        self.sum().scale(1.0 / n)
    }

    /// Broadcast to a target shape.
    ///
    /// # Errors
    ///
    /// Returns a broadcast error for incompatible shapes.
    pub fn broadcast_to(&self, shape: impl Into<Shape>) -> Result<TracedTensor> {
        self.ctx.emit(
            Prim::Broadcast {
                shape: shape.into(),
            },
            &[self.id],
        )
    }

    /// Reshape preserving element count.
    ///
    /// # Errors
    ///
    /// Returns a reshape error when element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Result<TracedTensor> {
        self.ctx.emit(
            Prim::Reshape {
                shape: shape.into(),
            },
            &[self.id],
        )
    }

    /// Numerically-stable softmax over `axis`.
    ///
    /// The max-shift uses a stop-gradient reduce-max, the standard
    /// construction.
    ///
    /// # Errors
    ///
    /// Returns an axis error for out-of-range axes.
    pub fn softmax(&self, axis: usize) -> Result<TracedTensor> {
        let shape = self.shape();
        let m = self
            .reduce_max(&[axis], true)?
            .broadcast_to(shape.clone())?;
        let e = self.sub(&m)?.exp();
        let z = e.reduce_sum(&[axis], true)?.broadcast_to(shape)?;
        e.div(&z)
    }

    /// Log-softmax over `axis` (stable).
    ///
    /// # Errors
    ///
    /// Returns an axis error for out-of-range axes.
    pub fn log_softmax(&self, axis: usize) -> Result<TracedTensor> {
        let shape = self.shape();
        let m = self
            .reduce_max(&[axis], true)?
            .broadcast_to(shape.clone())?;
        let s = self.sub(&m)?;
        let z = s
            .exp()
            .reduce_sum(&[axis], true)?
            .log()
            .broadcast_to(shape)?;
        s.sub(&z)
    }

    /// Layer normalization over the last axis with learnable `gamma` and
    /// `beta` (both shaped like the last axis).
    ///
    /// # Errors
    ///
    /// Returns shape errors when `gamma`/`beta` do not match the last axis.
    pub fn layer_norm(
        &self,
        gamma: &TracedTensor,
        beta: &TracedTensor,
        eps: f32,
    ) -> Result<TracedTensor> {
        let shape = self.shape();
        let last = shape.rank() - 1;
        let n = shape.dim(last) as f32;
        let mean = self
            .reduce_sum(&[last], true)?
            .scale(1.0 / n)
            .broadcast_to(shape.clone())?;
        let centered = self.sub(&mean)?;
        let var = centered
            .mul(&centered)?
            .reduce_sum(&[last], true)?
            .scale(1.0 / n)
            .add_scalar(eps)
            .rsqrt()
            .broadcast_to(shape.clone())?;
        let normed = centered.mul(&var)?;
        let g = gamma.broadcast_to(shape.clone())?;
        let b = beta.broadcast_to(shape)?;
        normed.mul(&g)?.add(&b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval;
    use crate::tensor::Tensor;

    #[test]
    fn trace_simple_mlp() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 4]);
        let w = ctx.input([4, 3]);
        let y = x.matmul(&w).unwrap().relu().sum();
        let j = ctx.finish(&[y]).unwrap();
        assert_eq!(j.invars().len(), 2);
        assert_eq!(j.eqns().len(), 3);
        assert_eq!(j.shape(j.outvars()[0]), &Shape::scalar());
    }

    #[test]
    fn yields_are_numbered_in_trace_order() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let a = ctx.pipeline_yield(&x);
        let b = ctx.pipeline_yield(&a);
        assert_eq!(ctx.num_yields(), 2);
        let j = ctx.finish(&[b]).unwrap();
        let ids: Vec<u32> = j
            .eqns()
            .iter()
            .filter_map(|e| match e.prim {
                Prim::PipelineYield { id, .. } => Some(id.0),
                _ => None,
            })
            .collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let ctx = TraceCtx::new();
        let x = ctx.input([3, 5]);
        let s = x.softmax(1).unwrap();
        let j = ctx.finish(&[s]).unwrap();
        let input =
            Tensor::from_vec([3, 5], (0..15).map(|i| (i as f32) * 0.3 - 2.0).collect()).unwrap();
        let out = eval(&j, &[input]).unwrap();
        for row in 0..3 {
            let s: f32 = out[0].data()[row * 5..(row + 1) * 5].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn layer_norm_is_normalized() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 8]);
        let g = ctx.input([8]);
        let b = ctx.input([8]);
        let y = x.layer_norm(&g, &b, 1e-5).unwrap();
        let j = ctx.finish(&[y]).unwrap();
        let input = Tensor::from_vec([2, 8], (0..16).map(|i| i as f32).collect()).unwrap();
        let out = eval(&j, &[input, Tensor::ones([8]), Tensor::zeros([8])]).unwrap();
        for row in 0..2 {
            let vals = &out[0].data()[row * 8..(row + 1) * 8];
            let mean: f32 = vals.iter().sum::<f32>() / 8.0;
            let var: f32 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn mean_is_scaled_sum() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let m = x.mean();
        let j = ctx.finish(&[m]).unwrap();
        let out = eval(
            &j,
            &[Tensor::from_vec([2, 2], vec![1., 2., 3., 4.]).unwrap()],
        )
        .unwrap();
        assert!((out[0].item().unwrap() - 2.5).abs() < 1e-6);
    }
}
