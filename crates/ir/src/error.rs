//! Error type shared by all IR operations.

use std::fmt;

use crate::shape::Shape;

/// Error returned by IR construction, shape inference, interpretation, and
/// differentiation.
#[derive(Debug, Clone, PartialEq)]
pub enum IrError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Which operation raised the mismatch.
        context: String,
        /// The shape that was expected.
        expected: Shape,
        /// The shape that was found.
        found: Shape,
    },
    /// An operation received an operand of unsupported rank.
    RankMismatch {
        /// Which operation raised the mismatch.
        context: String,
        /// The rank that was expected.
        expected: usize,
        /// The rank that was found.
        found: usize,
    },
    /// An axis index was out of range for the operand's rank.
    AxisOutOfRange {
        /// Which operation raised the error.
        context: String,
        /// The offending axis.
        axis: usize,
        /// The operand's rank.
        rank: usize,
    },
    /// An operation received the wrong number of operands.
    ArityMismatch {
        /// Which operation raised the error.
        context: String,
        /// The number of operands that was expected.
        expected: usize,
        /// The number of operands that was found.
        found: usize,
    },
    /// A variable was used before being defined, defined twice, or is
    /// otherwise unknown to the graph.
    InvalidVar {
        /// Which check raised the error.
        context: String,
        /// Numeric id of the offending variable.
        var: u32,
    },
    /// A broadcast between incompatible shapes was requested.
    BroadcastError {
        /// The source shape.
        from: Shape,
        /// The requested target shape.
        to: Shape,
    },
    /// A reshape changing the element count was requested.
    ReshapeError {
        /// The source shape.
        from: Shape,
        /// The requested target shape.
        to: Shape,
    },
    /// Differentiation was requested through a primitive that has no
    /// registered VJP rule (e.g. a gradient helper primitive).
    NonDifferentiable {
        /// Name of the primitive.
        prim: String,
    },
    /// A free-form invariant violation.
    Invalid(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::ShapeMismatch {
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{context}: shape mismatch, expected {expected}, found {found}"
                )
            }
            IrError::RankMismatch {
                context,
                expected,
                found,
            } => {
                write!(
                    f,
                    "{context}: rank mismatch, expected {expected}, found {found}"
                )
            }
            IrError::AxisOutOfRange {
                context,
                axis,
                rank,
            } => {
                write!(f, "{context}: axis {axis} out of range for rank {rank}")
            }
            IrError::ArityMismatch {
                context,
                expected,
                found,
            } => {
                write!(f, "{context}: expected {expected} operands, found {found}")
            }
            IrError::InvalidVar { context, var } => {
                write!(f, "{context}: invalid variable v{var}")
            }
            IrError::BroadcastError { from, to } => {
                write!(f, "cannot broadcast {from} to {to}")
            }
            IrError::ReshapeError { from, to } => {
                write!(
                    f,
                    "cannot reshape {from} ({} elements) to {to} ({} elements)",
                    from.numel(),
                    to.numel()
                )
            }
            IrError::NonDifferentiable { prim } => {
                write!(f, "primitive {prim} is not differentiable")
            }
            IrError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, IrError>;
