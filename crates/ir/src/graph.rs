//! The `Jaxpr`-style SSA dataflow graph and its builder.
//!
//! A [`Jaxpr`] is a flat list of equations in topological (definition)
//! order, with explicit input and output variables — the same structure
//! JAX traces Python programs into and the structure every JaxPP
//! transformation in the paper operates on.

use std::collections::{HashMap, HashSet};
use std::fmt;

use crate::error::{IrError, Result};
use crate::prim::Prim;
use crate::shape::Shape;

/// Identifier of an SSA variable within one [`Jaxpr`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// Index into dense per-variable tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One equation: `outputs = prim(inputs)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Eqn {
    /// The primitive applied.
    pub prim: Prim,
    /// Operand variables, in order.
    pub inputs: Vec<VarId>,
    /// Result variable (all current primitives are single-output).
    pub output: VarId,
}

/// An SSA dataflow graph: typed inputs, a list of equations in definition
/// order, and outputs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Jaxpr {
    shapes: Vec<Shape>,
    invars: Vec<VarId>,
    outvars: Vec<VarId>,
    eqns: Vec<Eqn>,
}

impl Jaxpr {
    /// The input variables, in declaration order.
    pub fn invars(&self) -> &[VarId] {
        &self.invars
    }

    /// The output variables, in declaration order (duplicates allowed).
    pub fn outvars(&self) -> &[VarId] {
        &self.outvars
    }

    /// The equations in topological order.
    pub fn eqns(&self) -> &[Eqn] {
        &self.eqns
    }

    /// The shape of a variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not belong to this graph.
    pub fn shape(&self, v: VarId) -> &Shape {
        &self.shapes[v.index()]
    }

    /// Number of variables (inputs + equation outputs).
    pub fn num_vars(&self) -> usize {
        self.shapes.len()
    }

    /// Shapes of the input variables.
    pub fn in_shapes(&self) -> Vec<Shape> {
        self.invars.iter().map(|&v| self.shape(v).clone()).collect()
    }

    /// Shapes of the output variables.
    pub fn out_shapes(&self) -> Vec<Shape> {
        self.outvars
            .iter()
            .map(|&v| self.shape(v).clone())
            .collect()
    }

    /// Checks the SSA and shape invariants of the graph:
    /// every variable is defined exactly once (inputs by declaration,
    /// others by exactly one equation) before use, and every equation's
    /// output shape matches its primitive's shape rule.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<()> {
        let mut defined: HashSet<VarId> = HashSet::new();
        for &v in &self.invars {
            if v.index() >= self.shapes.len() {
                return Err(IrError::InvalidVar {
                    context: "invar".into(),
                    var: v.0,
                });
            }
            if !defined.insert(v) {
                return Err(IrError::InvalidVar {
                    context: "duplicate invar".into(),
                    var: v.0,
                });
            }
        }
        for eqn in &self.eqns {
            for &i in &eqn.inputs {
                if !defined.contains(&i) {
                    return Err(IrError::InvalidVar {
                        context: format!("use before def in {}", eqn.prim),
                        var: i.0,
                    });
                }
            }
            let in_shapes: Vec<&Shape> = eqn.inputs.iter().map(|&i| self.shape(i)).collect();
            let inferred = eqn.prim.infer_shape(&in_shapes)?;
            if &inferred != self.shape(eqn.output) {
                return Err(IrError::ShapeMismatch {
                    context: format!("output of {}", eqn.prim),
                    expected: inferred,
                    found: self.shape(eqn.output).clone(),
                });
            }
            if !defined.insert(eqn.output) {
                return Err(IrError::InvalidVar {
                    context: "redefinition".into(),
                    var: eqn.output.0,
                });
            }
        }
        for &v in &self.outvars {
            if !defined.contains(&v) {
                return Err(IrError::InvalidVar {
                    context: "undefined outvar".into(),
                    var: v.0,
                });
            }
        }
        Ok(())
    }

    /// Removes equations whose results do not (transitively) contribute to
    /// any output. Returns the number of equations removed.
    pub fn dce(&mut self) -> usize {
        let mut live: HashSet<VarId> = self.outvars.iter().copied().collect();
        let mut keep = vec![false; self.eqns.len()];
        for (i, eqn) in self.eqns.iter().enumerate().rev() {
            if live.contains(&eqn.output) {
                keep[i] = true;
                live.extend(eqn.inputs.iter().copied());
            }
        }
        let before = self.eqns.len();
        let mut idx = 0;
        self.eqns.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
        before - self.eqns.len()
    }

    /// Total approximate flop count of the graph (used by cost models and
    /// tests on tiny models; paper-scale counts come from analytic
    /// formulas in `raxpp-models`).
    pub fn flops(&self) -> u64 {
        self.eqns
            .iter()
            .map(|e| {
                let in_shapes: Vec<&Shape> = e.inputs.iter().map(|&i| self.shape(i)).collect();
                let in_numels: Vec<usize> = in_shapes.iter().map(|s| s.numel()).collect();
                e.prim
                    .flops(&in_numels, self.shape(e.output).numel(), &in_shapes)
            })
            .sum()
    }

    /// Returns a copy of this graph with a different output list (used by
    /// linearization to expose residual intermediates as extra outputs).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidVar`] if any new output is unknown.
    pub fn with_outputs(&self, outvars: Vec<VarId>) -> Result<Jaxpr> {
        for &v in &outvars {
            if v.index() >= self.shapes.len() {
                return Err(IrError::InvalidVar {
                    context: "with_outputs".into(),
                    var: v.0,
                });
            }
        }
        let mut j = self.clone();
        j.outvars = outvars;
        j.validate()?;
        Ok(j)
    }

    /// For each variable, the indices of equations that consume it.
    pub fn uses(&self) -> HashMap<VarId, Vec<usize>> {
        let mut uses: HashMap<VarId, Vec<usize>> = HashMap::new();
        for (i, eqn) in self.eqns.iter().enumerate() {
            for &v in &eqn.inputs {
                uses.entry(v).or_default().push(i);
            }
        }
        uses
    }
}

impl fmt::Display for Jaxpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lambda ")?;
        for (i, &v) in self.invars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}:{}", self.shape(v))?;
        }
        writeln!(f, " .")?;
        for eqn in &self.eqns {
            write!(
                f,
                "  {}:{} = {}(",
                eqn.output,
                self.shape(eqn.output),
                eqn.prim
            )?;
            for (i, &v) in eqn.inputs.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            writeln!(f, ")")?;
        }
        write!(f, "  return (")?;
        for (i, &v) in self.outvars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Incremental builder for [`Jaxpr`] graphs.
///
/// Used directly by compiler passes; user programs go through the nicer
/// [`crate::trace::TraceCtx`] tracing API instead.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    shapes: Vec<Shape>,
    invars: Vec<VarId>,
    eqns: Vec<Eqn>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh(&mut self, shape: Shape) -> VarId {
        let id = VarId(self.shapes.len() as u32);
        self.shapes.push(shape);
        id
    }

    /// Declares a new graph input of the given shape.
    pub fn input(&mut self, shape: impl Into<Shape>) -> VarId {
        let v = self.fresh(shape.into());
        self.invars.push(v);
        v
    }

    /// Shape of an existing variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not a variable of this builder.
    pub fn shape(&self, v: VarId) -> &Shape {
        &self.shapes[v.index()]
    }

    /// Appends `prim(inputs)` and returns the result variable.
    ///
    /// # Errors
    ///
    /// Returns a shape or arity error if the operands are invalid.
    pub fn emit(&mut self, prim: Prim, inputs: &[VarId]) -> Result<VarId> {
        for &v in inputs {
            if v.index() >= self.shapes.len() {
                return Err(IrError::InvalidVar {
                    context: prim.name().into(),
                    var: v.0,
                });
            }
        }
        let in_shapes: Vec<&Shape> = inputs.iter().map(|&v| &self.shapes[v.index()]).collect();
        let out_shape = prim.infer_shape(&in_shapes)?;
        let out = self.fresh(out_shape);
        self.eqns.push(Eqn {
            prim,
            inputs: inputs.to_vec(),
            output: out,
        });
        Ok(out)
    }

    /// Splices another graph's equations into this one.
    ///
    /// `args` supplies, for each of `other`'s inputs, the variable of
    /// *this* graph to substitute. Returns the variables corresponding to
    /// `other`'s outputs.
    ///
    /// # Errors
    ///
    /// Returns an arity error when `args` does not match `other`'s input
    /// count, or a shape error when an argument's shape differs from the
    /// corresponding input's.
    pub fn inline(&mut self, other: &Jaxpr, args: &[VarId]) -> Result<Vec<VarId>> {
        if args.len() != other.invars().len() {
            return Err(IrError::ArityMismatch {
                context: "inline".into(),
                expected: other.invars().len(),
                found: args.len(),
            });
        }
        let mut map: HashMap<VarId, VarId> = HashMap::new();
        for (&inner, &outer) in other.invars().iter().zip(args) {
            if other.shape(inner) != self.shape(outer) {
                return Err(IrError::ShapeMismatch {
                    context: "inline argument".into(),
                    expected: other.shape(inner).clone(),
                    found: self.shape(outer).clone(),
                });
            }
            map.insert(inner, outer);
        }
        for eqn in other.eqns() {
            let inputs: Vec<VarId> = eqn.inputs.iter().map(|v| map[v]).collect();
            let out = self.emit(eqn.prim.clone(), &inputs)?;
            map.insert(eqn.output, out);
        }
        Ok(other.outvars().iter().map(|v| map[v]).collect())
    }

    /// Finalizes the graph with the given outputs.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::InvalidVar`] if an output is unknown.
    pub fn finish(self, outvars: Vec<VarId>) -> Result<Jaxpr> {
        for &v in &outvars {
            if v.index() >= self.shapes.len() {
                return Err(IrError::InvalidVar {
                    context: "outvar".into(),
                    var: v.0,
                });
            }
        }
        let jaxpr = Jaxpr {
            shapes: self.shapes,
            invars: self.invars,
            outvars,
            eqns: self.eqns,
        };
        jaxpr.validate()?;
        Ok(jaxpr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> Jaxpr {
        // f(x, w) = relu(x @ w); also returns an unused dead value.
        let mut b = GraphBuilder::new();
        let x = b.input([2, 3]);
        let w = b.input([3, 4]);
        let h = b.emit(Prim::MatMul, &[x, w]).unwrap();
        let _dead = b.emit(Prim::Neg, &[h]).unwrap();
        let y = b.emit(Prim::Relu, &[h]).unwrap();
        b.finish(vec![y]).unwrap()
    }

    #[test]
    fn build_and_validate() {
        let j = small_graph();
        assert_eq!(j.invars().len(), 2);
        assert_eq!(j.outvars().len(), 1);
        assert_eq!(j.shape(j.outvars()[0]), &Shape::new([2, 4]));
        j.validate().unwrap();
    }

    #[test]
    fn dce_removes_dead_code() {
        let mut j = small_graph();
        assert_eq!(j.eqns().len(), 3);
        let removed = j.dce();
        assert_eq!(removed, 1);
        assert_eq!(j.eqns().len(), 2);
        j.validate().unwrap();
    }

    #[test]
    fn emit_rejects_bad_shapes() {
        let mut b = GraphBuilder::new();
        let x = b.input([2, 3]);
        let y = b.input([2, 4]);
        assert!(b.emit(Prim::Add, &[x, y]).is_err());
        assert!(b.emit(Prim::MatMul, &[x, y]).is_err());
    }

    #[test]
    fn emit_rejects_foreign_var() {
        let mut b = GraphBuilder::new();
        let _x = b.input([2]);
        assert!(b.emit(Prim::Neg, &[VarId(42)]).is_err());
    }

    #[test]
    fn inline_splices_graphs() {
        let inner = small_graph();
        let mut b = GraphBuilder::new();
        let x = b.input([2, 3]);
        let w = b.input([3, 4]);
        let outs = b.inline(&inner, &[x, w]).unwrap();
        let y = b.emit(Prim::Neg, &[outs[0]]).unwrap();
        let j = b.finish(vec![y]).unwrap();
        j.validate().unwrap();
        assert_eq!(j.eqns().len(), inner.eqns().len() + 1);
    }

    #[test]
    fn inline_checks_shapes() {
        let inner = small_graph();
        let mut b = GraphBuilder::new();
        let x = b.input([9, 9]);
        let w = b.input([3, 4]);
        assert!(b.inline(&inner, &[x, w]).is_err());
        assert!(b.inline(&inner, &[x]).is_err());
    }

    #[test]
    fn flops_counts_matmul() {
        let j = small_graph();
        // matmul 2*2*3*4 = 48, neg 8, relu 8.
        assert_eq!(j.flops(), 48 + 8 + 8);
    }

    #[test]
    fn display_is_nonempty() {
        let j = small_graph();
        let s = j.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("return"));
    }

    #[test]
    fn uses_map() {
        let j = small_graph();
        let uses = j.uses();
        let h = j.eqns()[0].output;
        assert_eq!(uses[&h].len(), 2);
    }
}
