//! `raxpp-ir` — the tensor IR underlying RaxPP, a Rust reproduction of
//! JaxPP (*Scaling Deep Learning Training with MPMD Pipeline Parallelism*,
//! MLSys 2025).
//!
//! The crate provides the pieces JAX provides to JaxPP:
//!
//! * a [`Tensor`] type with reference CPU kernels,
//! * a traced, `Jaxpr`-style SSA dataflow graph ([`Jaxpr`], [`TraceCtx`]),
//! * reverse-mode autodiff ([`grad`], [`value_and_grad`], [`linearize`]),
//! * a CPU interpreter ([`eval`]),
//! * the [`Prim::PipelineYield`] stage marker that the pipeline
//!   partitioner in `raxpp-taskgraph` consumes (paper §3.2).
//!
//! # Example: trace, differentiate, evaluate
//!
//! ```
//! use raxpp_ir::{eval, grad, Tensor, TraceCtx};
//!
//! let ctx = TraceCtx::new();
//! let x = ctx.input([2, 2]);
//! let loss = x.mul(&x)?.sum();
//! let jaxpr = ctx.finish(&[loss])?;
//!
//! let g = grad(&jaxpr)?;
//! let out = eval(&g, &[Tensor::from_vec([2, 2], vec![1.0, 2.0, 3.0, 4.0])?])?;
//! assert_eq!(out[1].data(), &[2.0, 4.0, 6.0, 8.0]); // d(sum x²)/dx = 2x
//! # Ok::<(), raxpp_ir::IrError>(())
//! ```

#![warn(missing_docs)]

mod autodiff;
mod dtype;
mod error;
mod graph;
mod interp;
pub mod kernels;
mod optimize;
mod prim;
pub mod rng;
mod shape;
mod tensor;
mod trace;

pub use autodiff::{grad, linearize, value_and_grad, Linearized};
pub use dtype::DType;
pub use error::{IrError, Result};
pub use graph::{Eqn, GraphBuilder, Jaxpr, VarId};
pub use interp::{
    eval, eval_prim, eval_reference, eval_with_stats, eval_with_stats_hooked,
    eval_with_stats_observed, set_reference_mode, EvalHook, EvalStats, PanelObserver,
};
pub use kernels::{num_threads, set_num_threads};
pub use optimize::{optimize, OptimizeStats};
pub use prim::{Prim, YieldId};
pub use shape::Shape;
pub use tensor::{gelu, gelu_grad, Tensor};
pub use trace::{TraceCtx, TracedTensor};
