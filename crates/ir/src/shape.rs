//! Tensor shapes and shape arithmetic (broadcasting, reduction, matmul).

use std::fmt;

use crate::error::{IrError, Result};

/// The shape of a tensor: a list of dimension sizes.
///
/// A rank-0 shape (`Shape::scalar()`) denotes a scalar. Dimension sizes of
/// zero are permitted (empty tensors) so that edge cases are representable.
///
/// # Examples
///
/// ```
/// use raxpp_ir::Shape;
/// let s = Shape::new([2, 3]);
/// assert_eq!(s.rank(), 2);
/// assert_eq!(s.numel(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from anything convertible into a `Vec<usize>`.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for scalars).
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// The dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Returns true for rank-0 shapes.
    pub fn is_scalar(&self) -> bool {
        self.0.is_empty()
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![0; self.rank()];
        let mut acc = 1;
        for i in (0..self.rank()).rev() {
            strides[i] = acc;
            acc *= self.0[i];
        }
        strides
    }

    /// The shape after transposing the last two dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::RankMismatch`] for shapes of rank < 2.
    pub fn transposed(&self) -> Result<Shape> {
        if self.rank() < 2 {
            return Err(IrError::RankMismatch {
                context: "transpose".into(),
                expected: 2,
                found: self.rank(),
            });
        }
        let mut dims = self.0.clone();
        let r = dims.len();
        dims.swap(r - 2, r - 1);
        Ok(Shape(dims))
    }

    /// Output shape of a batched matrix multiply
    /// `[b…, m, k] @ [b…, k, n] → [b…, m, n]` with identical leading
    /// batch dimensions.
    ///
    /// # Errors
    ///
    /// Returns an error for rank < 3, mismatched batch dims, or a
    /// contraction mismatch.
    pub fn batch_matmul(&self, rhs: &Shape) -> Result<Shape> {
        if self.rank() < 3 || rhs.rank() != self.rank() {
            return Err(IrError::RankMismatch {
                context: "batch_matmul".into(),
                expected: 3,
                found: self.rank().min(rhs.rank()),
            });
        }
        let r = self.rank();
        if self.dims()[..r - 2] != rhs.dims()[..r - 2] {
            return Err(IrError::ShapeMismatch {
                context: "batch_matmul batch dims".into(),
                expected: self.clone(),
                found: rhs.clone(),
            });
        }
        if self.dim(r - 1) != rhs.dim(r - 2) {
            return Err(IrError::ShapeMismatch {
                context: "batch_matmul contraction".into(),
                expected: Shape::new([self.dim(r - 1)]),
                found: Shape::new([rhs.dim(r - 2)]),
            });
        }
        let mut dims = self.0.clone();
        dims[r - 1] = rhs.dim(r - 1);
        Ok(Shape(dims))
    }

    /// The shape after applying `perm` (a permutation of `0..rank`).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::Invalid`] unless `perm` is a permutation of the
    /// axes.
    pub fn permuted(&self, perm: &[usize]) -> Result<Shape> {
        if perm.len() != self.rank() {
            return Err(IrError::Invalid(format!(
                "permutation of length {} applied to rank {}",
                perm.len(),
                self.rank()
            )));
        }
        let mut seen = vec![false; self.rank()];
        for &p in perm {
            if p >= self.rank() || seen[p] {
                return Err(IrError::Invalid(format!("invalid permutation {perm:?}")));
            }
            seen[p] = true;
        }
        Ok(Shape(perm.iter().map(|&p| self.0[p]).collect()))
    }

    /// Output shape of a 2-D matrix multiply `self @ rhs`.
    ///
    /// # Errors
    ///
    /// Returns an error unless both shapes are rank 2 with a matching
    /// contraction dimension.
    pub fn matmul(&self, rhs: &Shape) -> Result<Shape> {
        if self.rank() != 2 {
            return Err(IrError::RankMismatch {
                context: "matmul lhs".into(),
                expected: 2,
                found: self.rank(),
            });
        }
        if rhs.rank() != 2 {
            return Err(IrError::RankMismatch {
                context: "matmul rhs".into(),
                expected: 2,
                found: rhs.rank(),
            });
        }
        if self.dim(1) != rhs.dim(0) {
            return Err(IrError::ShapeMismatch {
                context: "matmul contraction".into(),
                expected: Shape::new([self.dim(1)]),
                found: Shape::new([rhs.dim(0)]),
            });
        }
        Ok(Shape::new([self.dim(0), rhs.dim(1)]))
    }

    /// Whether `self` can be broadcast to `target` under NumPy rules
    /// (align trailing dimensions; each dimension must match or be 1 or be
    /// absent in `self`).
    pub fn broadcastable_to(&self, target: &Shape) -> bool {
        if self.rank() > target.rank() {
            return false;
        }
        let offset = target.rank() - self.rank();
        self.0
            .iter()
            .enumerate()
            .all(|(i, &d)| d == 1 || d == target.dim(i + offset))
    }

    /// The axes of `target` along which a broadcast from `self` expands
    /// (prepended axes and axes where `self` has size 1 but `target` does
    /// not). Used by the VJP of broadcast to know what to reduce over.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::BroadcastError`] if the broadcast is invalid.
    pub fn broadcast_axes(&self, target: &Shape) -> Result<Vec<usize>> {
        if !self.broadcastable_to(target) {
            return Err(IrError::BroadcastError {
                from: self.clone(),
                to: target.clone(),
            });
        }
        let offset = target.rank() - self.rank();
        let mut axes: Vec<usize> = (0..offset).collect();
        for (i, &d) in self.0.iter().enumerate() {
            if d == 1 && target.dim(i + offset) != 1 {
                axes.push(i + offset);
            }
        }
        Ok(axes)
    }

    /// Shape after reducing over `axes`.
    ///
    /// # Errors
    ///
    /// Returns [`IrError::AxisOutOfRange`] if any axis exceeds the rank.
    pub fn reduced(&self, axes: &[usize], keepdims: bool) -> Result<Shape> {
        for &a in axes {
            if a >= self.rank() {
                return Err(IrError::AxisOutOfRange {
                    context: "reduce".into(),
                    axis: a,
                    rank: self.rank(),
                });
            }
        }
        let mut dims = Vec::new();
        for (i, &d) in self.0.iter().enumerate() {
            if axes.contains(&i) {
                if keepdims {
                    dims.push(1);
                }
            } else {
                dims.push(d);
            }
        }
        Ok(Shape(dims))
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.is_scalar());
        assert_eq!(s.to_string(), "[]");
    }

    #[test]
    fn numel_and_strides() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn matmul_shapes() {
        let a = Shape::new([3, 4]);
        let b = Shape::new([4, 5]);
        assert_eq!(a.matmul(&b).unwrap(), Shape::new([3, 5]));
        assert!(a.matmul(&Shape::new([3, 5])).is_err());
        assert!(Shape::new([3]).matmul(&b).is_err());
    }

    #[test]
    fn transpose_shape() {
        assert_eq!(Shape::new([2, 3]).transposed().unwrap(), Shape::new([3, 2]));
        assert!(Shape::new([3]).transposed().is_err());
    }

    #[test]
    fn broadcast_rules() {
        let s = Shape::new([1, 3]);
        let t = Shape::new([2, 3]);
        assert!(s.broadcastable_to(&t));
        assert_eq!(s.broadcast_axes(&t).unwrap(), vec![0]);
        assert!(Shape::scalar().broadcastable_to(&t));
        assert_eq!(Shape::scalar().broadcast_axes(&t).unwrap(), vec![0, 1]);
        assert!(!Shape::new([4]).broadcastable_to(&t));
        let u = Shape::new([3]);
        assert_eq!(u.broadcast_axes(&t).unwrap(), vec![0]);
    }

    #[test]
    fn reduce_shapes() {
        let s = Shape::new([2, 3, 4]);
        assert_eq!(s.reduced(&[1], false).unwrap(), Shape::new([2, 4]));
        assert_eq!(s.reduced(&[1], true).unwrap(), Shape::new([2, 1, 4]));
        assert_eq!(s.reduced(&[0, 1, 2], false).unwrap(), Shape::scalar());
        assert!(s.reduced(&[3], false).is_err());
    }
}
