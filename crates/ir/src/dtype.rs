//! Element types.
//!
//! The CPU interpreter computes everything in `f32`; the declared [`DType`]
//! is carried through the IR so that byte-accurate buffer sizes can be
//! reported to the performance model (e.g. BF16 activations are half the
//! size of F32 ones on the wire and in device memory).

use std::fmt;

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DType {
    /// 32-bit IEEE float (the interpreter's compute type).
    #[default]
    F32,
    /// bfloat16 — the training precision used throughout the paper's
    /// evaluation (GPT-3 175B and Llama2 70B are trained in BF16).
    Bf16,
    /// IEEE half precision.
    F16,
}

impl DType {
    /// Size of one element in bytes.
    pub fn size_bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::Bf16 | DType::F16 => 2,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DType::F32 => "f32",
            DType::Bf16 => "bf16",
            DType::F16 => "f16",
        };
        write!(f, "{name}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(DType::F32.size_bytes(), 4);
        assert_eq!(DType::Bf16.size_bytes(), 2);
        assert_eq!(DType::F16.size_bytes(), 2);
        assert_eq!(DType::default(), DType::F32);
    }

    #[test]
    fn display() {
        assert_eq!(DType::Bf16.to_string(), "bf16");
    }
}
