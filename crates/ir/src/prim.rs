//! IR primitives and their shape rules.

use std::fmt;

use crate::error::{IrError, Result};
use crate::shape::Shape;

/// Identifier of a pipeline stage boundary, assigned in trace order.
///
/// The `k`-th `pipeline_yield` in a program separates logical stage `k`
/// from stage `k + 1` (paper §3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct YieldId(pub u32);

impl fmt::Display for YieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "yield{}", self.0)
    }
}

/// A primitive operation of the IR.
///
/// Broadcasting is *explicit* ([`Prim::Broadcast`]): elementwise binary
/// primitives require identical operand shapes. This keeps every gradient
/// rule local and makes activation sizes visible to the compiler, which the
/// pipeline partitioner relies on when computing communication volumes.
#[derive(Debug, Clone, PartialEq)]
pub enum Prim {
    /// Elementwise addition of two same-shaped tensors.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
    /// Elementwise negation.
    Neg,
    /// Multiply by a compile-time scalar.
    Scale(f32),
    /// Add a compile-time scalar.
    AddScalar(f32),
    /// 2-D matrix multiply `[m, k] × [k, n] → [m, n]`.
    MatMul,
    /// Batched matrix multiply `[b…, m, k] × [b…, k, n] → [b…, m, n]`
    /// (multi-head attention's workhorse).
    BatchMatMul,
    /// Transpose of the last two dimensions (rank ≥ 2).
    Transpose,
    /// General axis permutation.
    Permute {
        /// The permutation (`output axis i` reads `input axis perm[i]`).
        perm: Vec<usize>,
    },
    /// Rectified linear unit.
    Relu,
    /// GELU activation (tanh approximation).
    Gelu,
    /// Hyperbolic tangent.
    Tanh,
    /// Elementwise exponential.
    Exp,
    /// Elementwise natural logarithm.
    Log,
    /// Elementwise square root.
    Sqrt,
    /// Elementwise reciprocal square root.
    Rsqrt,
    /// Heaviside step (1 where x > 0). Gradient helper; not differentiable.
    Step,
    /// Derivative of GELU. Gradient helper; not differentiable.
    GeluGrad,
    /// Sum over the given axes.
    ReduceSum {
        /// Axes to reduce over (must be sorted, unique).
        axes: Vec<usize>,
        /// Whether reduced axes are kept with size 1.
        keepdims: bool,
    },
    /// Maximum over the given axes. Treated as a stop-gradient (its VJP is
    /// zero), which is the standard treatment for the softmax max-shift.
    ReduceMax {
        /// Axes to reduce over (must be sorted, unique).
        axes: Vec<usize>,
        /// Whether reduced axes are kept with size 1.
        keepdims: bool,
    },
    /// Broadcast to a target shape under NumPy alignment rules.
    Broadcast {
        /// The target shape.
        shape: Shape,
    },
    /// Reshape preserving element count.
    Reshape {
        /// The target shape.
        shape: Shape,
    },
    /// Materialize a constant-filled tensor (no operands).
    Fill {
        /// Fill value.
        value: f32,
        /// Output shape.
        shape: Shape,
    },
    /// Slice a contiguous block along the last axis (tensor-parallel
    /// shard extraction).
    SliceLast {
        /// First element of the block along the last axis.
        start: usize,
        /// Block length along the last axis.
        len: usize,
    },
    /// Embed a tensor as a block along the last axis of a larger output
    /// filled with `value` (tensor-parallel shard re-assembly; padding
    /// with `-0.0` keeps a subsequent exact all-reduce bitwise-neutral,
    /// since `x + (-0.0) == x` bitwise for every `x`).
    PadLast {
        /// Offset of the block along the last axis of the output.
        start: usize,
        /// Size of the output's last axis.
        full: usize,
        /// Fill value outside the block.
        value: f32,
    },
    /// Slice a contiguous block along the *first* axis (ZeRO-1
    /// optimizer-state shard extraction: the first dim is the one axis
    /// column-parallel tensor sharding never touches, so first-dim
    /// slices are uniform across tensor-parallel ranks).
    SliceFirst {
        /// First element of the block along the first axis.
        start: usize,
        /// Block length along the first axis.
        len: usize,
    },
    /// Embed a tensor as a block along the first axis of a larger output
    /// filled with `value` (ZeRO-1 shard re-assembly; padding with
    /// `-0.0` keeps a subsequent exact all-reduce bitwise-neutral, since
    /// `x + (-0.0) == x` bitwise for every `x`).
    PadFirst {
        /// Offset of the block along the first axis of the output.
        start: usize,
        /// Size of the output's first axis.
        full: usize,
        /// Fill value outside the block.
        value: f32,
    },
    /// Identity marker closing the current pipeline stage (paper §3.2).
    ///
    /// `id` records trace order; `backward` distinguishes markers emitted
    /// by autodiff for the reverse pass from user-written forward markers.
    PipelineYield {
        /// Which yield (in trace order) this is.
        id: YieldId,
        /// True for markers produced by differentiation.
        backward: bool,
    },
}

impl Prim {
    /// Number of operands the primitive consumes.
    pub fn arity(&self) -> usize {
        match self {
            Prim::Add | Prim::Sub | Prim::Mul | Prim::Div | Prim::MatMul | Prim::BatchMatMul => 2,
            Prim::Fill { .. } => 0,
            _ => 1,
        }
    }

    /// Short lowercase name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Prim::Add => "add",
            Prim::Sub => "sub",
            Prim::Mul => "mul",
            Prim::Div => "div",
            Prim::Neg => "neg",
            Prim::Scale(_) => "scale",
            Prim::AddScalar(_) => "add_scalar",
            Prim::MatMul => "matmul",
            Prim::BatchMatMul => "batch_matmul",
            Prim::Transpose => "transpose",
            Prim::Permute { .. } => "permute",
            Prim::Relu => "relu",
            Prim::Gelu => "gelu",
            Prim::Tanh => "tanh",
            Prim::Exp => "exp",
            Prim::Log => "log",
            Prim::Sqrt => "sqrt",
            Prim::Rsqrt => "rsqrt",
            Prim::Step => "step",
            Prim::GeluGrad => "gelu_grad",
            Prim::ReduceSum { .. } => "reduce_sum",
            Prim::ReduceMax { .. } => "reduce_max",
            Prim::Broadcast { .. } => "broadcast",
            Prim::Reshape { .. } => "reshape",
            Prim::Fill { .. } => "fill",
            Prim::SliceLast { .. } => "slice_last",
            Prim::PadLast { .. } => "pad_last",
            Prim::SliceFirst { .. } => "slice_first",
            Prim::PadFirst { .. } => "pad_first",
            Prim::PipelineYield { .. } => "pipeline_yield",
        }
    }

    /// Infers the output shape from operand shapes.
    ///
    /// # Errors
    ///
    /// Returns an arity or shape error when operands are invalid for the
    /// primitive.
    pub fn infer_shape(&self, inputs: &[&Shape]) -> Result<Shape> {
        let arity = self.arity();
        if inputs.len() != arity {
            return Err(IrError::ArityMismatch {
                context: self.name().into(),
                expected: arity,
                found: inputs.len(),
            });
        }
        match self {
            Prim::Add | Prim::Sub | Prim::Mul | Prim::Div => {
                if inputs[0] != inputs[1] {
                    return Err(IrError::ShapeMismatch {
                        context: self.name().into(),
                        expected: inputs[0].clone(),
                        found: inputs[1].clone(),
                    });
                }
                Ok(inputs[0].clone())
            }
            Prim::Neg
            | Prim::Scale(_)
            | Prim::AddScalar(_)
            | Prim::Relu
            | Prim::Gelu
            | Prim::Tanh
            | Prim::Exp
            | Prim::Log
            | Prim::Sqrt
            | Prim::Rsqrt
            | Prim::Step
            | Prim::GeluGrad
            | Prim::PipelineYield { .. } => Ok(inputs[0].clone()),
            Prim::MatMul => inputs[0].matmul(inputs[1]),
            Prim::BatchMatMul => inputs[0].batch_matmul(inputs[1]),
            Prim::Transpose => inputs[0].transposed(),
            Prim::Permute { perm } => inputs[0].permuted(perm),
            Prim::ReduceSum { axes, keepdims } | Prim::ReduceMax { axes, keepdims } => {
                inputs[0].reduced(axes, *keepdims)
            }
            Prim::Broadcast { shape } => {
                if !inputs[0].broadcastable_to(shape) {
                    return Err(IrError::BroadcastError {
                        from: inputs[0].clone(),
                        to: shape.clone(),
                    });
                }
                Ok(shape.clone())
            }
            Prim::Reshape { shape } => {
                if inputs[0].numel() != shape.numel() {
                    return Err(IrError::ReshapeError {
                        from: inputs[0].clone(),
                        to: shape.clone(),
                    });
                }
                Ok(shape.clone())
            }
            Prim::Fill { shape, .. } => Ok(shape.clone()),
            Prim::SliceLast { start, len } => {
                let r = inputs[0].rank();
                if r == 0 {
                    return Err(IrError::RankMismatch {
                        context: "slice_last".into(),
                        expected: 1,
                        found: 0,
                    });
                }
                let last = inputs[0].dim(r - 1);
                if start + len > last {
                    return Err(IrError::Invalid(format!(
                        "slice_last[{start}, {len}] out of bounds for last dim {last}"
                    )));
                }
                let mut dims = inputs[0].dims().to_vec();
                dims[r - 1] = *len;
                Ok(Shape::new(dims))
            }
            Prim::PadLast { start, full, .. } => {
                let r = inputs[0].rank();
                if r == 0 {
                    return Err(IrError::RankMismatch {
                        context: "pad_last".into(),
                        expected: 1,
                        found: 0,
                    });
                }
                let last = inputs[0].dim(r - 1);
                if start + last > *full {
                    return Err(IrError::Invalid(format!(
                        "pad_last[{start}, {full}] cannot hold a block of {last}"
                    )));
                }
                let mut dims = inputs[0].dims().to_vec();
                dims[r - 1] = *full;
                Ok(Shape::new(dims))
            }
            Prim::SliceFirst { start, len } => {
                if inputs[0].rank() == 0 {
                    return Err(IrError::RankMismatch {
                        context: "slice_first".into(),
                        expected: 1,
                        found: 0,
                    });
                }
                let first = inputs[0].dim(0);
                if start + len > first {
                    return Err(IrError::Invalid(format!(
                        "slice_first[{start}, {len}] out of bounds for first dim {first}"
                    )));
                }
                let mut dims = inputs[0].dims().to_vec();
                dims[0] = *len;
                Ok(Shape::new(dims))
            }
            Prim::PadFirst { start, full, .. } => {
                if inputs[0].rank() == 0 {
                    return Err(IrError::RankMismatch {
                        context: "pad_first".into(),
                        expected: 1,
                        found: 0,
                    });
                }
                let first = inputs[0].dim(0);
                if start + first > *full {
                    return Err(IrError::Invalid(format!(
                        "pad_first[{start}, {full}] cannot hold a block of {first}"
                    )));
                }
                let mut dims = inputs[0].dims().to_vec();
                dims[0] = *full;
                Ok(Shape::new(dims))
            }
        }
    }

    /// Approximate floating-point operation count, used by cost models.
    ///
    /// `in_numels` are operand element counts, `out_numel` the result's.
    pub fn flops(&self, in_numels: &[usize], out_numel: usize, in_shapes: &[&Shape]) -> u64 {
        match self {
            // 2mnk flops for an [m,k]x[k,n] matmul.
            Prim::MatMul => {
                let m = in_shapes[0].dim(0) as u64;
                let k = in_shapes[0].dim(1) as u64;
                let n = in_shapes[1].dim(1) as u64;
                2 * m * n * k
            }
            // 2·batch·m·n·k = 2·(lhs numel)·n.
            Prim::BatchMatMul => {
                let r = in_shapes[1].rank();
                let n = in_shapes[1].dim(r - 1) as u64;
                2 * in_shapes[0].numel() as u64 * n
            }
            Prim::Fill { .. } | Prim::Reshape { .. } | Prim::PipelineYield { .. } => 0,
            Prim::ReduceSum { .. } | Prim::ReduceMax { .. } => {
                in_numels.first().copied().unwrap_or(0) as u64
            }
            // Transcendentals: charge a few flops per element.
            Prim::Gelu | Prim::GeluGrad | Prim::Tanh | Prim::Exp | Prim::Log => {
                10 * out_numel as u64
            }
            _ => out_numel as u64,
        }
    }
}

impl fmt::Display for Prim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prim::Scale(c) => write!(f, "scale[{c}]"),
            Prim::AddScalar(c) => write!(f, "add_scalar[{c}]"),
            Prim::ReduceSum { axes, keepdims } => {
                write!(f, "reduce_sum[axes={axes:?}, keepdims={keepdims}]")
            }
            Prim::ReduceMax { axes, keepdims } => {
                write!(f, "reduce_max[axes={axes:?}, keepdims={keepdims}]")
            }
            Prim::Permute { perm } => write!(f, "permute[{perm:?}]"),
            Prim::Broadcast { shape } => write!(f, "broadcast[{shape}]"),
            Prim::Reshape { shape } => write!(f, "reshape[{shape}]"),
            Prim::Fill { value, shape } => write!(f, "fill[{value}, {shape}]"),
            Prim::SliceLast { start, len } => write!(f, "slice_last[{start}, {len}]"),
            Prim::PadLast { start, full, value } => {
                write!(f, "pad_last[{start}, {full}, {value}]")
            }
            Prim::SliceFirst { start, len } => write!(f, "slice_first[{start}, {len}]"),
            Prim::PadFirst { start, full, value } => {
                write!(f, "pad_first[{start}, {full}, {value}]")
            }
            Prim::PipelineYield { id, backward } => {
                write!(
                    f,
                    "pipeline_yield[{id}{}]",
                    if *backward { ", bwd" } else { "" }
                )
            }
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity() {
        assert_eq!(Prim::Add.arity(), 2);
        assert_eq!(Prim::Neg.arity(), 1);
        assert_eq!(
            Prim::Fill {
                value: 0.0,
                shape: Shape::scalar()
            }
            .arity(),
            0
        );
    }

    #[test]
    fn elementwise_requires_equal_shapes() {
        let a = Shape::new([2, 3]);
        let b = Shape::new([3, 2]);
        assert!(Prim::Add.infer_shape(&[&a, &a]).is_ok());
        assert!(Prim::Add.infer_shape(&[&a, &b]).is_err());
        assert!(Prim::Add.infer_shape(&[&a]).is_err());
    }

    #[test]
    fn matmul_shape_rule() {
        let a = Shape::new([2, 3]);
        let b = Shape::new([3, 5]);
        assert_eq!(
            Prim::MatMul.infer_shape(&[&a, &b]).unwrap(),
            Shape::new([2, 5])
        );
    }

    #[test]
    fn matmul_flops() {
        let a = Shape::new([2, 3]);
        let b = Shape::new([3, 5]);
        assert_eq!(Prim::MatMul.flops(&[6, 15], 10, &[&a, &b]), 2 * 2 * 3 * 5);
    }

    #[test]
    fn broadcast_shape_rule() {
        let from = Shape::new([1, 3]);
        let to = Shape::new([4, 3]);
        let p = Prim::Broadcast { shape: to.clone() };
        assert_eq!(p.infer_shape(&[&from]).unwrap(), to);
        let bad = Shape::new([2, 3]);
        assert!(p.infer_shape(&[&bad]).is_err());
    }

    #[test]
    fn yield_display() {
        let p = Prim::PipelineYield {
            id: YieldId(3),
            backward: true,
        };
        assert_eq!(p.to_string(), "pipeline_yield[yield3, bwd]");
    }
}
