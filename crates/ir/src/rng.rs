//! A small, dependency-free PRNG (xoshiro256++ seeded by splitmix64).
//!
//! The executable path needs reproducible pseudo-randomness for
//! parameter initialization and synthetic data, but the container this
//! repo builds in has no registry access, so the `rand` crate is
//! replaced by this module. The API mirrors the subset of `rand` the
//! workspace used: a [`SeedableRng`] constructor, an object-safe-ish
//! [`Rng`] trait with `gen_range`, and a default [`StdRng`].

use std::ops::Range;

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform random source with range sampling.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f32` in `[0, 1)` with 24 bits of precision.
    fn next_f32(&mut self) -> f32 {
        ((self.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one sample from `range` using `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u = ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32);
        let v = range.start + u * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let u = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, u16, u8);

/// The workspace's default generator: xoshiro256++ (Blackman & Vigna),
/// seeded by splitmix64. Passes the statistical checks the tests rely
/// on (moment tests on `Tensor::randn`) and is fully deterministic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f32_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&v), "{v}");
            let w = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn usize_range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
