//! Blocked, multi-threaded CPU kernels for the executable MPMD path.
//!
//! The seed repo shipped naive single-threaded reference loops; these
//! kernels are the "real" backend standing in for per-device SPMD
//! compute (paper §4.1's XLA executables). Two invariants:
//!
//! 1. **Bit-compatibility.** For every output element the reduction
//!    order over the contraction axis is `p = 0, 1, …, k-1`, identical
//!    to the reference kernels, and row partitions never split a
//!    reduction. Results are therefore equal (`==` on `f32`, which
//!    treats `-0.0 == 0.0`) to the naive loops for all finite inputs,
//!    independent of the thread count.
//! 2. **Graceful degradation.** Small problems fall back to the serial
//!    path; `RAXPP_THREADS` (or [`set_num_threads`]) caps the worker
//!    count, defaulting to the machine's available parallelism.
//!
//! The blocking strategy is register-level (GEBP): the matmul
//! micro-kernel accumulates an MR×NR output tile over the whole
//! contraction axis in registers, eliminating the naive `ikj` loop's
//! per-step output-row traffic and amortizing each `rhs` panel load
//! across MR·NR multiply-accumulates, with branch-free constant-bound
//! inner loops that auto-vectorize.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Unset sentinel for the global thread-count cell.
const UNSET: usize = 0;

static THREADS: AtomicUsize = AtomicUsize::new(UNSET);

/// Minimum multiply-accumulate count before threads are worth spawning.
const PAR_MIN_MACS: usize = 1 << 20;

/// Minimum element count before a parallel transpose is worth it.
const PAR_MIN_ELEMS: usize = 1 << 18;

/// Output rows per micro-kernel tile (register blocking factor).
const MR: usize = 8;

/// Output columns per micro-kernel tile. 32 f32 = two 512-bit (or four
/// 256-bit) vectors; the MR×NR accumulator block maps onto the vector
/// register file.
const NR: usize = 64;

/// Hand-vectorized AVX-512 micro-kernel, selected at runtime when the
/// host supports it. Uses separate `vmulps`/`vaddps` (never FMA), so
/// every output element sees the exact mul-then-add sequence of the
/// scalar tile — bit-identical results on every code path.
#[cfg(target_arch = "x86_64")]
mod avx512 {
    use super::{MR, NR};
    use core::arch::x86_64::*;

    /// Whether the host can run [`tile`].
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx512f")
    }

    /// Accumulates one full MR×NR output tile over `p = 0..k` in zmm
    /// registers and stores it to `out` (row stride `ldo`).
    ///
    /// # Safety
    ///
    /// Requires AVX-512F, `a` valid for `MR` rows of stride `lda` and
    /// length `k`, `b` valid for `k` rows of stride `ldb` and width
    /// `NR`, and `out` valid for `MR` rows of stride `ldo` and width
    /// `NR`.
    #[target_feature(enable = "avx512f")]
    pub unsafe fn tile(
        a: *const f32,
        lda: usize,
        b: *const f32,
        ldb: usize,
        k: usize,
        out: *mut f32,
        ldo: usize,
    ) {
        const COLS: usize = NR / 16;
        const { assert!(NR.is_multiple_of(16), "NR must be whole zmm vectors") };
        let mut acc = [[_mm512_setzero_ps(); COLS]; MR];
        for p in 0..k {
            let mut bv = [_mm512_setzero_ps(); COLS];
            for (c, slot) in bv.iter_mut().enumerate() {
                *slot = _mm512_loadu_ps(b.add(p * ldb + 16 * c));
            }
            for (r, row) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_ps(*a.add(r * lda + p));
                for (c, slot) in row.iter_mut().enumerate() {
                    *slot = _mm512_add_ps(*slot, _mm512_mul_ps(av, bv[c]));
                }
            }
        }
        for (r, row) in acc.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                _mm512_storeu_ps(out.add(r * ldo + 16 * c), v);
            }
        }
    }
}

/// Returns the kernel worker-thread budget.
///
/// Resolution order: [`set_num_threads`] override, then the
/// `RAXPP_THREADS` environment variable, then
/// `std::thread::available_parallelism()`.
pub fn num_threads() -> usize {
    let cached = THREADS.load(Ordering::Relaxed);
    if cached != UNSET {
        return cached;
    }
    let n = std::env::var("RAXPP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    THREADS.store(n, Ordering::Relaxed);
    n
}

/// Overrides the kernel worker-thread budget for this process
/// (takes precedence over `RAXPP_THREADS`).
///
/// # Panics
///
/// Panics when `n` is zero.
pub fn set_num_threads(n: usize) {
    assert!(n > 0, "thread count must be positive");
    THREADS.store(n, Ordering::Relaxed);
}

/// The machine's core budget (cached; 1 when detection fails).
fn cores() -> usize {
    static CORES: AtomicUsize = AtomicUsize::new(UNSET);
    let cached = CORES.load(Ordering::Relaxed);
    if cached != UNSET {
        return cached;
    }
    let n = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    CORES.store(n, Ordering::Relaxed);
    n
}

/// Threads to use for a problem with `macs` multiply-accumulates and
/// `rows` independent row partitions. The configured budget is capped
/// at the core count — oversubscribing cores only adds spawn and
/// scheduling overhead, it cannot speed up a compute-bound kernel.
fn plan_threads(macs: usize, rows: usize) -> usize {
    if macs < PAR_MIN_MACS {
        return 1;
    }
    num_threads().min(cores()).min(rows.div_ceil(MR)).max(1)
}

/// Packs `b` (`[k,n]` row-major) into column panels of width [`NR`]:
/// panel `j0 = i·NR` (width `w = min(NR, n-j0)`) lives at offset
/// `j0·k`, with its row `p` stored contiguously at `j0·k + p·w`. The
/// micro-kernel then streams each panel sequentially (one cache line
/// every few `p` steps) instead of striding `n` floats — a page per
/// step for large `n`, which defeats the TLB and the prefetchers.
/// Pure data movement: values are untouched, so reduction order and
/// bit-compatibility are unaffected.
fn pack_b(b: &[f32], k: usize, n: usize) -> Vec<f32> {
    let mut packed = vec![0.0f32; k * n];
    let mut j0 = 0;
    while j0 < n {
        let w = (n - j0).min(NR);
        let panel = &mut packed[j0 * k..j0 * k + w * k];
        for p in 0..k {
            panel[p * w..(p + 1) * w].copy_from_slice(&b[p * n + j0..p * n + j0 + w]);
        }
        j0 += w;
    }
    packed
}

/// `out[i][j] = Σ_p a[i][p] · b[p][j]` for global rows `row0..row0+rows`
/// of `a`, writing into `out` (which holds exactly those rows, zeroed).
/// `bp` is `b` packed by [`pack_b`].
///
/// GEBP-style micro-kernel: each MR×NR output tile accumulates over the
/// whole contraction axis in registers, so `out` is touched once per
/// tile and each packed `b` panel load feeds MR·NR multiply-accumulates.
/// The hot tile is hand-vectorized AVX-512 where available and a
/// constant-bound auto-vectorized loop elsewhere; edge tiles run the
/// same loops with runtime bounds. Reduction order per output element
/// is `p` ascending — bit-compatible with the naive kernel (zero `a`
/// entries contribute `±0.0`, which `f32::eq` treats as equal to
/// skipping them).
fn matmul_rows(a: &[f32], bp: &[f32], out: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    let wide = avx512::available();
    let rows = out.len() / n;
    let mut r0 = 0;
    while r0 < rows {
        let mr = (rows - r0).min(MR);
        let mut j0 = 0;
        while j0 < n {
            let nr = (n - j0).min(NR);
            let panel = &bp[j0 * k..j0 * k + nr * k];
            if mr == MR && nr == NR {
                #[cfg(target_arch = "x86_64")]
                if wide {
                    // Bounds: `panel` holds k rows of NR floats and
                    // `out` holds `rows ≥ r0+MR` rows of width n with
                    // columns j0..j0+NR in range.
                    unsafe {
                        avx512::tile(
                            a.as_ptr().add((row0 + r0) * k),
                            k,
                            panel.as_ptr(),
                            NR,
                            k,
                            out.as_mut_ptr().add(r0 * n + j0),
                            n,
                        );
                    }
                    j0 += nr;
                    continue;
                }
                // Hot path: constant bounds, accumulators in registers.
                let ar: [&[f32]; MR] =
                    core::array::from_fn(|r| &a[(row0 + r0 + r) * k..(row0 + r0 + r + 1) * k]);
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let brow = &panel[p * NR..(p + 1) * NR];
                    for r in 0..MR {
                        let av = ar[r][p];
                        for j in 0..NR {
                            acc[r][j] += av * brow[j];
                        }
                    }
                }
                for (r, row) in acc.iter().enumerate() {
                    let o = (r0 + r) * n + j0;
                    out[o..o + NR].copy_from_slice(row);
                }
            } else {
                let mut acc = [[0.0f32; NR]; MR];
                for p in 0..k {
                    let brow = &panel[p * nr..(p + 1) * nr];
                    for r in 0..mr {
                        let av = a[(row0 + r0 + r) * k + p];
                        for (j, &bv) in brow.iter().enumerate() {
                            acc[r][j] += av * bv;
                        }
                    }
                }
                for (r, row) in acc.iter().take(mr).enumerate() {
                    let o = (r0 + r) * n + j0;
                    out[o..o + nr].copy_from_slice(&row[..nr]);
                }
            }
            j0 += nr;
        }
        r0 += mr;
    }
}

/// Blocked, parallel 2-D matmul: `[m,k] @ [k,n]` into a fresh buffer.
pub(crate) fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if n == 0 || k == 0 || m == 0 {
        return out;
    }
    let bp = pack_b(b, k, n);
    let nt = plan_threads(m * k * n, m);
    if nt <= 1 {
        matmul_rows(a, &bp, &mut out, 0, k, n);
        return out;
    }
    let rows_per = m.div_ceil(nt);
    let bp = &bp;
    std::thread::scope(|s| {
        for (ci, chunk) in out.chunks_mut(rows_per * n).enumerate() {
            s.spawn(move || matmul_rows(a, bp, chunk, ci * rows_per, k, n));
        }
    });
    out
}

/// Output rows per streamed panel in [`matmul_streamed`]: large enough
/// that packing and loop overhead amortize, small enough that the first
/// panel is ready early in the multiply.
pub const STREAM_PANEL_ROWS: usize = 64;

/// Blocked 2-D matmul `[m,k] @ [k,n]` that hands each completed panel of
/// [`STREAM_PANEL_ROWS`] output rows to `sink(row0, panel)` as soon as
/// its last element is written, then returns the full result buffer.
///
/// This is the compute half of tensor-parallel compute/communication
/// overlap: a shard lane can publish finished rows to the collective
/// rendezvous while later rows are still multiplying. Bit-compatible
/// with `matmul`: rows are independent (no partition ever splits a
/// reduction) and every element reduces `p`-ascending in the same
/// `matmul_rows` micro-kernel, so chunking by rows changes nothing —
/// each published panel holds exactly the bytes the final buffer holds
/// at those rows.
pub fn matmul_streamed(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    sink: &mut dyn FnMut(usize, &[f32]),
) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    if n == 0 || m == 0 {
        return out;
    }
    if k == 0 {
        // Degenerate contraction: the zero buffer is already final.
        sink(0, &out);
        return out;
    }
    let bp = pack_b(b, k, n);
    let mut r0 = 0;
    while r0 < m {
        let rows = (m - r0).min(STREAM_PANEL_ROWS);
        let chunk = &mut out[r0 * n..(r0 + rows) * n];
        matmul_rows(a, &bp, chunk, r0, k, n);
        sink(r0, chunk);
        r0 += rows;
    }
    out
}

/// One batch slice's rows for the batched matmul (`bp` holds each
/// batch's `b` slice packed by [`pack_b`], concatenated).
fn batch_rows(a: &[f32], bp: &[f32], out: &mut [f32], grow0: usize, m: usize, k: usize, n: usize) {
    // Global rows grow0..grow0+rows index into [batch, m] jointly.
    let rows = out.len() / n.max(1);
    let mut done = 0;
    while done < rows {
        let grow = grow0 + done;
        let (bi, i) = (grow / m, grow % m);
        let span = (m - i).min(rows - done);
        let a_slice = &a[bi * m * k..(bi + 1) * m * k];
        let b_slice = &bp[bi * k * n..(bi + 1) * k * n];
        matmul_rows(
            a_slice,
            b_slice,
            &mut out[done * n..(done + span) * n],
            i,
            k,
            n,
        );
        done += span;
    }
}

/// Blocked, parallel batched matmul: `[batch,m,k] @ [batch,k,n]`.
pub(crate) fn batch_matmul(
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    if n == 0 || k == 0 || m == 0 {
        return out;
    }
    let mut packed = vec![0.0f32; batch * k * n];
    for bi in 0..batch {
        packed[bi * k * n..(bi + 1) * k * n].copy_from_slice(&pack_b(
            &b[bi * k * n..(bi + 1) * k * n],
            k,
            n,
        ));
    }
    let total_rows = batch * m;
    let nt = plan_threads(batch * m * k * n, total_rows);
    if nt <= 1 {
        batch_rows(a, &packed, &mut out, 0, m, k, n);
        return out;
    }
    let rows_per = total_rows.div_ceil(nt);
    let bp = &packed;
    std::thread::scope(|s| {
        for (ci, chunk) in out.chunks_mut(rows_per * n).enumerate() {
            s.spawn(move || batch_rows(a, bp, chunk, ci * rows_per, m, k, n));
        }
    });
    out
}

/// Cache-tile edge for the blocked transpose.
const TS: usize = 32;

/// Transposes one `[m,n]` slice into `dst` rows `j0..j0+jrows` of the
/// `[n,m]` output (tile-blocked so both sides stream through cache).
fn transpose_tile(src: &[f32], dst: &mut [f32], j0: usize, jrows: usize, m: usize, n: usize) {
    for jb in (0..jrows).step_by(TS) {
        let jhi = (jb + TS).min(jrows);
        for ib in (0..m).step_by(TS) {
            let ihi = (ib + TS).min(m);
            for j in jb..jhi {
                let drow = &mut dst[j * m..(j + 1) * m];
                for i in ib..ihi {
                    drow[i] = src[i * n + (j0 + j)];
                }
            }
        }
    }
}

/// Blocked, parallel batched transpose of the last two dims:
/// `[batch…, m, n] → [batch…, n, m]`.
pub(crate) fn transpose(src: &[f32], batch: usize, m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    if m == 0 || n == 0 {
        return out;
    }
    let nt = if batch * m * n < PAR_MIN_ELEMS {
        1
    } else {
        num_threads().min(cores())
    };
    if nt <= 1 || batch > 1 {
        // Batched case: parallelize over batch slices instead of rows.
        if nt > 1 {
            let per = batch.div_ceil(nt);
            std::thread::scope(|s| {
                for (ci, chunk) in out.chunks_mut(per * m * n).enumerate() {
                    s.spawn(move || {
                        for (bi, slot) in chunk.chunks_mut(m * n).enumerate() {
                            let b = ci * per + bi;
                            transpose_tile(&src[b * m * n..(b + 1) * m * n], slot, 0, n, m, n);
                        }
                    });
                }
            });
        } else {
            for b in 0..batch {
                transpose_tile(
                    &src[b * m * n..(b + 1) * m * n],
                    &mut out[b * m * n..(b + 1) * m * n],
                    0,
                    n,
                    m,
                    n,
                );
            }
        }
        return out;
    }
    // Single large matrix: parallelize over output row ranges.
    let jrows_per = n.div_ceil(nt);
    std::thread::scope(|s| {
        for (ci, chunk) in out.chunks_mut(jrows_per * m).enumerate() {
            let j0 = ci * jrows_per;
            s.spawn(move || transpose_tile(src, chunk, j0, chunk.len() / m, m, n));
        }
    });
    out
}

/// Naive reference matmul (the seed repo's kernel, kept verbatim for
/// parity tests and the `step_time` bench's pre-optimization baseline).
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            let orow = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
    out
}

/// Naive reference batched matmul (seed kernel).
pub fn batch_matmul_naive(
    a: &[f32],
    b: &[f32],
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    for bi in 0..batch {
        let slice = matmul_naive(
            &a[bi * m * k..(bi + 1) * m * k],
            &b[bi * k * n..(bi + 1) * k * n],
            m,
            k,
            n,
        );
        out[bi * m * n..(bi + 1) * m * n].copy_from_slice(&slice);
    }
    out
}

/// Naive reference batched transpose (seed kernel).
pub fn transpose_naive(src: &[f32], batch: usize, m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; batch * m * n];
    for b in 0..batch {
        let s = &src[b * m * n..(b + 1) * m * n];
        let d = &mut out[b * m * n..(b + 1) * m * n];
        for i in 0..m {
            for j in 0..n {
                d[j * m + i] = s[i * n + j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq(n: usize) -> Vec<f32> {
        (0..n).map(|i| (i as f32) * 0.37 - 3.0).collect()
    }

    #[test]
    fn blocked_matmul_matches_naive_odd_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (5, 3, 7),
            (4, 4, 4),
            (9, 1, 2),
            (2, 17, 33),
            (65, 33, 17),
        ] {
            let a = seq(m * k);
            let b = seq(k * n);
            assert_eq!(
                matmul(&a, &b, m, k, n),
                matmul_naive(&a, &b, m, k, n),
                "({m},{k},{n})"
            );
        }
    }

    #[test]
    fn streamed_matmul_is_bitwise_and_panels_reassemble() {
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 7), (63, 16, 9), (64, 8, 8), (130, 17, 33)] {
            let a = seq(m * k);
            let b = seq(k * n);
            let want = matmul(&a, &b, m, k, n);
            let mut published = vec![f32::NAN; m * n];
            let mut next_row = 0usize;
            let got = matmul_streamed(&a, &b, m, k, n, &mut |row0, panel| {
                assert_eq!(row0, next_row, "panels arrive in row order");
                assert_eq!(panel.len() % n, 0);
                published[row0 * n..row0 * n + panel.len()].copy_from_slice(panel);
                next_row = row0 + panel.len() / n;
            });
            assert_eq!(got, want, "({m},{k},{n}) streamed result differs");
            assert_eq!(published, want, "({m},{k},{n}) panels don't reassemble");
            assert_eq!(next_row, m);
        }
    }

    #[test]
    fn parallel_partition_is_thread_count_invariant() {
        let (m, k, n) = (130, 64, 48);
        let a = seq(m * k);
        let b = seq(k * n);
        let want = matmul_naive(&a, &b, m, k, n);
        // Force the parallel path by making the size check irrelevant:
        // run matmul_rows chunked by hand for several partition widths.
        let bp = pack_b(&b, k, n);
        for nt in [1usize, 2, 3, 5, 8] {
            let rows_per = m.div_ceil(nt);
            let mut out = vec![0.0f32; m * n];
            for (ci, chunk) in out.chunks_mut(rows_per * n).enumerate() {
                matmul_rows(&a, &bp, chunk, ci * rows_per, k, n);
            }
            assert_eq!(out, want, "nt={nt}");
        }
    }

    #[test]
    fn transpose_tiles_match_naive() {
        for &(batch, m, n) in &[(1, 1, 1), (1, 33, 65), (3, 5, 7), (2, 32, 32), (1, 100, 3)] {
            let src = seq(batch * m * n);
            assert_eq!(
                transpose(&src, batch, m, n),
                transpose_naive(&src, batch, m, n),
                "({batch},{m},{n})"
            );
        }
    }

    #[test]
    fn batch_matmul_matches_naive() {
        for &(batch, m, k, n) in &[(1, 3, 4, 5), (4, 2, 3, 2), (2, 7, 5, 3), (0, 2, 2, 2)] {
            let a = seq(batch * m * k);
            let b = seq(batch * k * n);
            assert_eq!(
                batch_matmul(&a, &b, batch, m, k, n),
                batch_matmul_naive(&a, &b, batch, m, k, n),
                "({batch},{m},{k},{n})"
            );
        }
    }

    #[test]
    fn thread_knob_roundtrips() {
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(1);
        assert_eq!(num_threads(), 1);
    }
}
