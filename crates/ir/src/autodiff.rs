//! Reverse-mode automatic differentiation on [`Jaxpr`] graphs.
//!
//! Two entry points:
//!
//! * [`linearize`] — splits a graph into an augmented *forward* graph (the
//!   original outputs plus the residual intermediates the backward pass
//!   needs) and a *backward* graph consuming residuals and output
//!   cotangents. This split is exactly what pipeline parallelism needs:
//!   the forward task of a stage saves residuals, and the backward task of
//!   the same stage (scheduled on the same actor, paper §3.3) consumes
//!   them later.
//! * [`value_and_grad`] — a single fused graph computing outputs and
//!   gradients, used as the single-device *reference* that the MPMD
//!   runtime is validated against.

use std::collections::HashMap;

use crate::error::{IrError, Result};
use crate::graph::{GraphBuilder, Jaxpr, VarId};
use crate::prim::Prim;
use crate::shape::Shape;

/// Which primal values a primitive's VJP rule needs at backward time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Needs {
    /// Operand indices required (as a bitmask over arity ≤ 2).
    in0: bool,
    in1: bool,
    /// Whether the primal output is required.
    out: bool,
}

const NONE: Needs = Needs {
    in0: false,
    in1: false,
    out: false,
};

fn vjp_needs(prim: &Prim) -> Needs {
    match prim {
        Prim::Mul | Prim::Div | Prim::MatMul | Prim::BatchMatMul => Needs {
            in0: true,
            in1: true,
            out: false,
        },
        Prim::Relu | Prim::Gelu | Prim::Log => Needs {
            in0: true,
            in1: false,
            out: false,
        },
        Prim::Tanh | Prim::Exp | Prim::Sqrt | Prim::Rsqrt => Needs {
            in0: false,
            in1: false,
            out: true,
        },
        _ => NONE,
    }
}

/// The result of [`linearize`].
#[derive(Debug, Clone)]
pub struct Linearized {
    /// Forward graph. Inputs are the original inputs; outputs are the
    /// original outputs followed by `n_residuals` residual values.
    pub fwd: Jaxpr,
    /// Backward graph. Inputs are the `n_residuals` residuals followed by
    /// one cotangent per original output; outputs are the cotangents of
    /// the original inputs, in input order.
    pub bwd: Jaxpr,
    /// Number of primal outputs of the original graph.
    pub n_primal_outputs: usize,
    /// Number of residual values passed from forward to backward.
    pub n_residuals: usize,
}

/// Linearizes a graph into forward + backward halves.
///
/// # Errors
///
/// Returns [`IrError::NonDifferentiable`] if the graph contains a
/// gradient-helper primitive ([`Prim::Step`], [`Prim::GeluGrad`]) on a
/// path that requires differentiation, or propagates graph-construction
/// errors.
pub fn linearize(jaxpr: &Jaxpr) -> Result<Linearized> {
    // 1. Collect residuals: every primal value some VJP rule needs.
    let mut residuals: Vec<VarId> = Vec::new();
    let mut seen: HashMap<VarId, usize> = HashMap::new();
    let record = |v: VarId, residuals: &mut Vec<VarId>, seen: &mut HashMap<VarId, usize>| {
        seen.entry(v).or_insert_with(|| {
            residuals.push(v);
            residuals.len() - 1
        });
    };
    for eqn in jaxpr.eqns() {
        let needs = vjp_needs(&eqn.prim);
        if needs.in0 {
            record(eqn.inputs[0], &mut residuals, &mut seen);
        }
        if needs.in1 {
            record(eqn.inputs[1], &mut residuals, &mut seen);
        }
        if needs.out {
            record(eqn.output, &mut residuals, &mut seen);
        }
    }

    // 2. Forward graph: original outputs + residuals.
    let mut out = jaxpr.outvars().to_vec();
    out.extend(residuals.iter().copied());
    let fwd = jaxpr.with_outputs(out)?;

    // 3. Backward graph.
    let mut b = GraphBuilder::new();
    // Residual inputs, in residual order.
    let mut primal: HashMap<VarId, VarId> = HashMap::new();
    for &r in &residuals {
        let v = b.input(jaxpr.shape(r).clone());
        primal.insert(r, v);
    }
    // One cotangent input per primal output.
    let mut ct: HashMap<VarId, VarId> = HashMap::new();
    for &o in jaxpr.outvars() {
        let g = b.input(jaxpr.shape(o).clone());
        accumulate(&mut b, &mut ct, o, g)?;
    }
    // Reverse sweep.
    for eqn in jaxpr.eqns().iter().rev() {
        let Some(&g) = ct.get(&eqn.output) else {
            continue;
        };
        emit_vjp(
            &mut b,
            jaxpr,
            eqn.prim.clone(),
            &eqn.inputs,
            eqn.output,
            g,
            &primal,
            &mut ct,
        )?;
    }
    // Input cotangents (zero-filled when the input does not influence any
    // output).
    let mut outs = Vec::with_capacity(jaxpr.invars().len());
    for &iv in jaxpr.invars() {
        let v = match ct.get(&iv) {
            Some(&v) => v,
            None => b.emit(
                Prim::Fill {
                    value: 0.0,
                    shape: jaxpr.shape(iv).clone(),
                },
                &[],
            )?,
        };
        outs.push(v);
    }
    let bwd = b.finish(outs)?;

    Ok(Linearized {
        fwd,
        bwd,
        n_primal_outputs: jaxpr.outvars().len(),
        n_residuals: residuals.len(),
    })
}

fn accumulate(
    b: &mut GraphBuilder,
    ct: &mut HashMap<VarId, VarId>,
    primal_var: VarId,
    new: VarId,
) -> Result<()> {
    match ct.get(&primal_var) {
        Some(&existing) => {
            let sum = b.emit(Prim::Add, &[existing, new])?;
            ct.insert(primal_var, sum);
        }
        None => {
            ct.insert(primal_var, new);
        }
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn emit_vjp(
    b: &mut GraphBuilder,
    jaxpr: &Jaxpr,
    prim: Prim,
    inputs: &[VarId],
    output: VarId,
    g: VarId,
    primal: &HashMap<VarId, VarId>,
    ct: &mut HashMap<VarId, VarId>,
) -> Result<()> {
    // Fetches the backward-graph variable holding a saved primal value.
    let res = |v: VarId| -> Result<VarId> {
        primal.get(&v).copied().ok_or(IrError::InvalidVar {
            context: "missing residual".into(),
            var: v.0,
        })
    };
    match prim {
        Prim::Add => {
            accumulate(b, ct, inputs[0], g)?;
            accumulate(b, ct, inputs[1], g)?;
        }
        Prim::Sub => {
            accumulate(b, ct, inputs[0], g)?;
            let ng = b.emit(Prim::Neg, &[g])?;
            accumulate(b, ct, inputs[1], ng)?;
        }
        Prim::Mul => {
            let (a, c) = (res(inputs[0])?, res(inputs[1])?);
            let da = b.emit(Prim::Mul, &[g, c])?;
            let dc = b.emit(Prim::Mul, &[g, a])?;
            accumulate(b, ct, inputs[0], da)?;
            accumulate(b, ct, inputs[1], dc)?;
        }
        Prim::Div => {
            let (a, c) = (res(inputs[0])?, res(inputs[1])?);
            let da = b.emit(Prim::Div, &[g, c])?;
            let ga = b.emit(Prim::Mul, &[g, a])?;
            let cc = b.emit(Prim::Mul, &[c, c])?;
            let q = b.emit(Prim::Div, &[ga, cc])?;
            let dc = b.emit(Prim::Neg, &[q])?;
            accumulate(b, ct, inputs[0], da)?;
            accumulate(b, ct, inputs[1], dc)?;
        }
        Prim::Neg => {
            let da = b.emit(Prim::Neg, &[g])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Scale(c) => {
            let da = b.emit(Prim::Scale(c), &[g])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::AddScalar(_) => {
            accumulate(b, ct, inputs[0], g)?;
        }
        Prim::MatMul => {
            let (a, w) = (res(inputs[0])?, res(inputs[1])?);
            let wt = b.emit(Prim::Transpose, &[w])?;
            let da = b.emit(Prim::MatMul, &[g, wt])?;
            let at = b.emit(Prim::Transpose, &[a])?;
            let dw = b.emit(Prim::MatMul, &[at, g])?;
            accumulate(b, ct, inputs[0], da)?;
            accumulate(b, ct, inputs[1], dw)?;
        }
        Prim::BatchMatMul => {
            let (a, w) = (res(inputs[0])?, res(inputs[1])?);
            let wt = b.emit(Prim::Transpose, &[w])?;
            let da = b.emit(Prim::BatchMatMul, &[g, wt])?;
            let at = b.emit(Prim::Transpose, &[a])?;
            let dw = b.emit(Prim::BatchMatMul, &[at, g])?;
            accumulate(b, ct, inputs[0], da)?;
            accumulate(b, ct, inputs[1], dw)?;
        }
        Prim::Transpose => {
            let da = b.emit(Prim::Transpose, &[g])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Permute { ref perm } => {
            // The VJP of a permutation is the inverse permutation.
            let mut inverse = vec![0usize; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                inverse[p] = i;
            }
            let da = b.emit(Prim::Permute { perm: inverse }, &[g])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Relu => {
            let x = res(inputs[0])?;
            let mask = b.emit(Prim::Step, &[x])?;
            let da = b.emit(Prim::Mul, &[g, mask])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Gelu => {
            let x = res(inputs[0])?;
            let d = b.emit(Prim::GeluGrad, &[x])?;
            let da = b.emit(Prim::Mul, &[g, d])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Tanh => {
            let y = res(output)?;
            let yy = b.emit(Prim::Mul, &[y, y])?;
            let n = b.emit(Prim::Neg, &[yy])?;
            let one_minus = b.emit(Prim::AddScalar(1.0), &[n])?;
            let da = b.emit(Prim::Mul, &[g, one_minus])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Exp => {
            let y = res(output)?;
            let da = b.emit(Prim::Mul, &[g, y])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Log => {
            let x = res(inputs[0])?;
            let da = b.emit(Prim::Div, &[g, x])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Sqrt => {
            let y = res(output)?;
            let gs = b.emit(Prim::Scale(0.5), &[g])?;
            let da = b.emit(Prim::Div, &[gs, y])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Rsqrt => {
            // d/dx x^{-1/2} = -1/2 x^{-3/2} = -1/2 y^3.
            let y = res(output)?;
            let y2 = b.emit(Prim::Mul, &[y, y])?;
            let y3 = b.emit(Prim::Mul, &[y2, y])?;
            let gy = b.emit(Prim::Mul, &[g, y3])?;
            let da = b.emit(Prim::Scale(-0.5), &[gy])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::ReduceSum { ref axes, keepdims } => {
            let in_shape = jaxpr.shape(inputs[0]).clone();
            let gk = if keepdims {
                g
            } else {
                let kept = in_shape.reduced(axes, true)?;
                b.emit(Prim::Reshape { shape: kept }, &[g])?
            };
            let da = b.emit(Prim::Broadcast { shape: in_shape }, &[gk])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        // Stop-gradient: the max-shift in stable softmax contributes no
        // gradient (the standard treatment).
        Prim::ReduceMax { .. } => {}
        Prim::Broadcast { ref shape } => {
            let in_shape = jaxpr.shape(inputs[0]).clone();
            let axes = in_shape.broadcast_axes(shape)?;
            let summed = b.emit(
                Prim::ReduceSum {
                    axes,
                    keepdims: true,
                },
                &[g],
            )?;
            let da = b.emit(Prim::Reshape { shape: in_shape }, &[summed])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Reshape { .. } => {
            let in_shape = jaxpr.shape(inputs[0]).clone();
            let da = b.emit(Prim::Reshape { shape: in_shape }, &[g])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Fill { .. } => {}
        Prim::SliceLast { start, .. } => {
            // Scatter the block's cotangent back into a zero-filled
            // full-width tensor.
            let in_shape = jaxpr.shape(inputs[0]);
            let full = in_shape.dim(in_shape.rank() - 1);
            let da = b.emit(
                Prim::PadLast {
                    start,
                    full,
                    value: 0.0,
                },
                &[g],
            )?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::PadLast { start, .. } => {
            let in_shape = jaxpr.shape(inputs[0]);
            let len = in_shape.dim(in_shape.rank() - 1);
            let da = b.emit(Prim::SliceLast { start, len }, &[g])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::SliceFirst { start, .. } => {
            let in_shape = jaxpr.shape(inputs[0]);
            let full = in_shape.dim(0);
            let da = b.emit(
                Prim::PadFirst {
                    start,
                    full,
                    value: 0.0,
                },
                &[g],
            )?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::PadFirst { start, .. } => {
            let in_shape = jaxpr.shape(inputs[0]);
            let len = in_shape.dim(0);
            let da = b.emit(Prim::SliceFirst { start, len }, &[g])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::PipelineYield { id, .. } => {
            // The backward of a stage boundary is a stage boundary of the
            // reverse pass (paper §3: autodiff produces the backward
            // stages).
            let da = b.emit(Prim::PipelineYield { id, backward: true }, &[g])?;
            accumulate(b, ct, inputs[0], da)?;
        }
        Prim::Step | Prim::GeluGrad => {
            return Err(IrError::NonDifferentiable {
                prim: prim.name().into(),
            });
        }
    }
    Ok(())
}

/// Builds a graph computing `(outputs..., grads of the `wrt` inputs...)`.
///
/// The first output of `jaxpr` must be a scalar; it is the value
/// differentiated (cotangent seed 1.0). Cotangents of any further outputs
/// are seeded with zeros, so they flow through unchanged as auxiliary
/// outputs — the `(loss, aux)` convention of `jax.value_and_grad`.
///
/// # Errors
///
/// Returns [`IrError::RankMismatch`] if output 0 is not scalar,
/// [`IrError::Invalid`] for an out-of-range `wrt` index, or any
/// linearization error.
pub fn value_and_grad(jaxpr: &Jaxpr, wrt: &[usize]) -> Result<Jaxpr> {
    let out_shapes = jaxpr.out_shapes();
    if out_shapes.is_empty() || !out_shapes[0].is_scalar() {
        return Err(IrError::RankMismatch {
            context: "value_and_grad output 0".into(),
            expected: 0,
            found: out_shapes.first().map_or(0, Shape::rank),
        });
    }
    for &w in wrt {
        if w >= jaxpr.invars().len() {
            return Err(IrError::Invalid(format!(
                "wrt index {w} out of range for {} inputs",
                jaxpr.invars().len()
            )));
        }
    }
    let lin = linearize(jaxpr)?;
    let mut b = GraphBuilder::new();
    let args: Vec<VarId> = jaxpr
        .invars()
        .iter()
        .map(|&v| b.input(jaxpr.shape(v).clone()))
        .collect();
    let fwd_outs = b.inline(&lin.fwd, &args)?;
    let (primal_outs, res_outs) = fwd_outs.split_at(lin.n_primal_outputs);

    let mut bwd_args: Vec<VarId> = res_outs.to_vec();
    for (i, shape) in out_shapes.iter().enumerate() {
        let seed = if i == 0 { 1.0 } else { 0.0 };
        let s = b.emit(
            Prim::Fill {
                value: seed,
                shape: shape.clone(),
            },
            &[],
        )?;
        bwd_args.push(s);
    }
    let in_cts = b.inline(&lin.bwd, &bwd_args)?;

    let mut outs = primal_outs.to_vec();
    outs.extend(wrt.iter().map(|&w| in_cts[w]));
    let mut combined = b.finish(outs)?;
    combined.dce();
    Ok(combined)
}

/// Gradient with respect to *all* inputs: `(outputs..., grads...)`.
///
/// # Errors
///
/// Same as [`value_and_grad`].
pub fn grad(jaxpr: &Jaxpr) -> Result<Jaxpr> {
    let wrt: Vec<usize> = (0..jaxpr.invars().len()).collect();
    value_and_grad(jaxpr, &wrt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::eval;
    use crate::tensor::Tensor;
    use crate::trace::TraceCtx;

    /// Central finite differences of `f: R^n -> R` at `inputs[idx]`.
    fn finite_diff(jaxpr: &Jaxpr, inputs: &[Tensor], idx: usize) -> Tensor {
        let h = 1e-3f32;
        let base = inputs.to_vec();
        let n = base[idx].numel();
        let mut out = vec![0.0f32; n];
        for i in 0..n {
            let mut plus = base.clone();
            let mut pd = plus[idx].data().to_vec();
            pd[i] += h;
            plus[idx] = Tensor::from_vec(plus[idx].shape().clone(), pd).unwrap();
            let mut minus = base.clone();
            let mut md = minus[idx].data().to_vec();
            md[i] -= h;
            minus[idx] = Tensor::from_vec(minus[idx].shape().clone(), md).unwrap();
            let fp = eval(jaxpr, &plus).unwrap()[0].item().unwrap();
            let fm = eval(jaxpr, &minus).unwrap()[0].item().unwrap();
            out[i] = (fp - fm) / (2.0 * h);
        }
        Tensor::from_vec(base[idx].shape().clone(), out).unwrap()
    }

    fn check_grads(jaxpr: &Jaxpr, inputs: &[Tensor], tol: f32) {
        let g = grad(jaxpr).unwrap();
        let outs = eval(&g, inputs).unwrap();
        let n_primal = jaxpr.outvars().len();
        for (i, _) in inputs.iter().enumerate() {
            let analytic = &outs[n_primal + i];
            let numeric = finite_diff(jaxpr, inputs, i);
            assert!(
                analytic.allclose(&numeric, tol),
                "grad {i} mismatch: analytic {analytic} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn grad_of_square_sum() {
        // f(x) = sum(x*x); df/dx = 2x.
        let ctx = TraceCtx::new();
        let x = ctx.input([3]);
        let y = x.mul(&x).unwrap().sum();
        let j = ctx.finish(&[y]).unwrap();
        let g = grad(&j).unwrap();
        let out = eval(&g, &[Tensor::from_vec([3], vec![1., 2., 3.]).unwrap()]).unwrap();
        assert_eq!(out[0].item().unwrap(), 14.0);
        assert_eq!(out[1].data(), &[2., 4., 6.]);
    }

    #[test]
    fn grad_of_matmul_mlp() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 3]);
        let w1 = ctx.input([3, 4]);
        let w2 = ctx.input([4, 1]);
        let h = x.matmul(&w1).unwrap().tanh();
        let y = h.matmul(&w2).unwrap().sum();
        let j = ctx.finish(&[y]).unwrap();
        let mut rng = crate::rng::StdRng::seed_from_u64(7);
        use crate::rng::SeedableRng;
        let inputs = vec![
            Tensor::randn([2, 3], 0.5, &mut rng),
            Tensor::randn([3, 4], 0.5, &mut rng),
            Tensor::randn([4, 1], 0.5, &mut rng),
        ];
        check_grads(&j, &inputs, 2e-2);
    }

    #[test]
    fn grad_through_broadcast_bias() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 3]);
        let b = ctx.input([3]);
        let y = x.add(&b.broadcast_to([2, 3]).unwrap()).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let j = ctx.finish(&[loss]).unwrap();
        use crate::rng::SeedableRng;
        let mut rng = crate::rng::StdRng::seed_from_u64(8);
        let inputs = vec![
            Tensor::randn([2, 3], 1.0, &mut rng),
            Tensor::randn([3], 1.0, &mut rng),
        ];
        check_grads(&j, &inputs, 2e-2);
    }

    #[test]
    fn grad_of_softmax_cross_entropy() {
        let ctx = TraceCtx::new();
        let logits = ctx.input([2, 4]);
        let onehot = ctx.input([2, 4]);
        let ls = logits.log_softmax(1).unwrap();
        let loss = onehot.mul(&ls).unwrap().sum().neg().scale(0.5);
        let j = ctx.finish(&[loss]).unwrap();
        let logits_t =
            Tensor::from_vec([2, 4], vec![0.1, 2.0, -1.0, 0.3, 1.2, 0.0, 0.4, -0.7]).unwrap();
        let onehot_t = Tensor::from_vec([2, 4], vec![0., 1., 0., 0., 0., 0., 1., 0.]).unwrap();
        let g = value_and_grad(&j, &[0]).unwrap();
        let outs = eval(&g, &[logits_t.clone(), onehot_t.clone()]).unwrap();
        let numeric = finite_diff(&j, &[logits_t, onehot_t], 0);
        assert!(
            outs[1].allclose(&numeric, 2e-2),
            "{} vs {}",
            outs[1],
            numeric
        );
    }

    #[test]
    fn grad_through_layer_norm() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 4]);
        let gm = ctx.input([4]);
        let bt = ctx.input([4]);
        let y = x.layer_norm(&gm, &bt, 1e-5).unwrap();
        let loss = y.mul(&y).unwrap().sum();
        let j = ctx.finish(&[loss]).unwrap();
        use crate::rng::SeedableRng;
        let mut rng = crate::rng::StdRng::seed_from_u64(9);
        let inputs = vec![
            Tensor::randn([2, 4], 1.0, &mut rng),
            Tensor::randn([4], 0.3, &mut rng).map(|v| v + 1.0),
            Tensor::randn([4], 0.3, &mut rng),
        ];
        check_grads(&j, &inputs, 3e-2);
    }

    #[test]
    fn grad_with_aux_output() {
        // Second output is auxiliary; gradient only flows from output 0.
        let ctx = TraceCtx::new();
        let x = ctx.input([2]);
        let loss = x.mul(&x).unwrap().sum();
        let aux = x.scale(3.0);
        let j = ctx.finish(&[loss, aux]).unwrap();
        let g = grad(&j).unwrap();
        let out = eval(&g, &[Tensor::from_vec([2], vec![1., 2.]).unwrap()]).unwrap();
        assert_eq!(out.len(), 3); // loss, aux, grad
        assert_eq!(out[1].data(), &[3., 6.]);
        assert_eq!(out[2].data(), &[2., 4.]);
    }

    #[test]
    fn unused_input_gets_zero_grad() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2]);
        let unused = ctx.input([3]);
        let _ = &unused;
        let loss = x.sum();
        let j = ctx.finish(&[loss]).unwrap();
        let g = grad(&j).unwrap();
        let out = eval(&g, &[Tensor::ones([2]), Tensor::ones([3])]).unwrap();
        assert_eq!(out[2].data(), &[0., 0., 0.]);
    }

    #[test]
    fn value_and_grad_requires_scalar_loss() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2]);
        let y = x.scale(2.0);
        let j = ctx.finish(&[y]).unwrap();
        assert!(value_and_grad(&j, &[0]).is_err());
    }

    #[test]
    fn yield_markers_survive_differentiation() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let w = ctx.input([2, 2]);
        let h = x.matmul(&w).unwrap();
        let h = ctx.pipeline_yield(&h);
        let loss = h.mul(&h).unwrap().sum();
        let j = ctx.finish(&[loss]).unwrap();
        let lin = linearize(&j).unwrap();
        let bwd_yields: Vec<bool> = lin
            .bwd
            .eqns()
            .iter()
            .filter_map(|e| match e.prim {
                Prim::PipelineYield { backward, .. } => Some(backward),
                _ => None,
            })
            .collect();
        assert_eq!(bwd_yields, vec![true]);
    }

    #[test]
    fn grad_of_batch_matmul() {
        // loss = sum(bmm(A, B)); check both operand gradients against
        // finite differences.
        let ctx = TraceCtx::new();
        let a = ctx.input([2, 2, 3]);
        let b = ctx.input([2, 3, 2]);
        let loss = a.bmm(&b).unwrap().sum();
        let j = ctx.finish(&[loss]).unwrap();
        use crate::rng::SeedableRng;
        let mut rng = crate::rng::StdRng::seed_from_u64(31);
        let inputs = vec![
            Tensor::randn([2, 2, 3], 0.5, &mut rng),
            Tensor::randn([2, 3, 2], 0.5, &mut rng),
        ];
        check_grads(&j, &inputs, 2e-2);
    }

    #[test]
    fn grad_of_permute() {
        // loss = sum((permute(x, [2,0,1]) * w)^2)-ish composition.
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 3, 4]);
        let p = x.permute(&[2, 0, 1]).unwrap();
        let loss = p.mul(&p).unwrap().sum().scale(0.5);
        let j = ctx.finish(&[loss]).unwrap();
        use crate::rng::SeedableRng;
        let mut rng = crate::rng::StdRng::seed_from_u64(32);
        let inputs = vec![Tensor::randn([2, 3, 4], 1.0, &mut rng)];
        check_grads(&j, &inputs, 2e-2);
    }

    #[test]
    fn linearized_fwd_matches_original() {
        let ctx = TraceCtx::new();
        let x = ctx.input([2, 2]);
        let y = x.gelu().sum();
        let j = ctx.finish(&[y]).unwrap();
        let lin = linearize(&j).unwrap();
        let t = Tensor::from_vec([2, 2], vec![0.5, -1.0, 2.0, 0.0]).unwrap();
        let orig = eval(&j, std::slice::from_ref(&t)).unwrap();
        let aug = eval(&lin.fwd, &[t]).unwrap();
        assert_eq!(orig[0], aug[0]);
        assert_eq!(aug.len(), 1 + lin.n_residuals);
    }
}
