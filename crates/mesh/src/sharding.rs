//! Partition specs and named-axis sharding (paper §2.1, Figure 1).
//!
//! Model code annotates arrays with *logical* axis names
//! (`("batch", "emb")`); a separate partitioning specification maps
//! logical names to mesh axes (`batch ⊳ data, mlp ⊳ model`). Resolving
//! the two yields a concrete [`PartitionSpec`] per array, from which local
//! (per-device) shapes follow.

use std::collections::HashMap;
use std::fmt;

use raxpp_ir::Shape;

use crate::mesh::{Mesh, MeshError};

/// A concrete sharding of one array: for each array dimension, the mesh
/// axis it is split over (or `None` for replicated-along-that-dim).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PartitionSpec(Vec<Option<String>>);

impl PartitionSpec {
    /// Builds a spec from per-dimension mesh-axis names.
    pub fn new(dims: &[Option<&str>]) -> PartitionSpec {
        PartitionSpec(dims.iter().map(|d| d.map(str::to_string)).collect())
    }

    /// A fully replicated spec of the given rank.
    pub fn replicated(rank: usize) -> PartitionSpec {
        PartitionSpec(vec![None; rank])
    }

    /// The number of array dimensions the spec describes.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The mesh axis dimension `d` is sharded over, if any.
    pub fn axis(&self, d: usize) -> Option<&str> {
        self.0.get(d).and_then(|o| o.as_deref())
    }

    /// Iterates `(array dim, mesh axis)` for sharded dimensions.
    pub fn sharded_dims(&self) -> impl Iterator<Item = (usize, &str)> {
        self.0
            .iter()
            .enumerate()
            .filter_map(|(i, a)| a.as_deref().map(|a| (i, a)))
    }

    /// The per-device local shape of a global array under this spec.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::BadAxis`] for unknown mesh axes and
    /// [`MeshError::Indivisible`] when a dimension is not divisible by
    /// its mesh axis size.
    pub fn local_shape(&self, global: &Shape, mesh: &Mesh) -> Result<Shape, MeshError> {
        if global.rank() != self.rank() {
            return Err(MeshError::BadAxis(format!(
                "spec rank {} does not match array rank {}",
                self.rank(),
                global.rank()
            )));
        }
        let mut dims = Vec::with_capacity(global.rank());
        for (i, axis) in self.0.iter().enumerate() {
            let d = global.dim(i);
            match axis {
                None => dims.push(d),
                Some(a) => {
                    let size = mesh
                        .axis_size(a)
                        .ok_or_else(|| MeshError::BadAxis(format!("unknown axis {a}")))?;
                    if !d.is_multiple_of(size) {
                        return Err(MeshError::Indivisible {
                            dim: d,
                            axis_size: size,
                        });
                    }
                    dims.push(d / size);
                }
            }
        }
        Ok(Shape::new(dims))
    }

    /// Number of distinct shards (product of the used mesh axes' sizes);
    /// the array is replicated over the remaining `num_devices / shards`
    /// devices.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::BadAxis`] for unknown mesh axes.
    pub fn num_shards(&self, mesh: &Mesh) -> Result<usize, MeshError> {
        let mut n = 1;
        for (_, a) in self.sharded_dims() {
            n *= mesh
                .axis_size(a)
                .ok_or_else(|| MeshError::BadAxis(format!("unknown axis {a}")))?;
        }
        Ok(n)
    }
}

impl fmt::Display for PartitionSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P(")?;
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match a {
                Some(a) => write!(f, "\"{a}\"")?,
                None => write!(f, "None")?,
            }
        }
        write!(f, ")")
    }
}

/// Logical axis names of one array (e.g. `("batch", "emb")`), the
/// model-side half of Figure 1a.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicalAxes(Vec<Option<String>>);

impl LogicalAxes {
    /// Builds logical axes from per-dimension names (`None` = unnamed,
    /// never sharded).
    pub fn new(dims: &[Option<&str>]) -> LogicalAxes {
        LogicalAxes(dims.iter().map(|d| d.map(str::to_string)).collect())
    }

    /// Resolves logical names to a concrete [`PartitionSpec`] under the
    /// given `logical name → mesh axis` rules (Figure 1b). Unmapped
    /// logical names are replicated.
    pub fn resolve(&self, rules: &AxisRules) -> PartitionSpec {
        PartitionSpec(
            self.0
                .iter()
                .map(|name| {
                    name.as_deref()
                        .and_then(|n| rules.mesh_axis(n).map(str::to_string))
                })
                .collect(),
        )
    }
}

/// The partitioning specification of Figure 1b: a mapping from logical
/// axis names to mesh axis names (`batch ⊳ data, mlp ⊳ model`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AxisRules {
    rules: HashMap<String, String>,
}

impl AxisRules {
    /// Builds rules from `(logical, mesh)` pairs.
    pub fn new(pairs: &[(&str, &str)]) -> AxisRules {
        AxisRules {
            rules: pairs
                .iter()
                .map(|&(l, m)| (l.to_string(), m.to_string()))
                .collect(),
        }
    }

    /// The mesh axis a logical name maps to, if any.
    pub fn mesh_axis(&self, logical: &str) -> Option<&str> {
        self.rules.get(logical).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(&[("data", 2), ("model", 4)]).unwrap()
    }

    #[test]
    fn local_shapes_figure1() {
        // A.shape = (n, m) = (8, 16) over mesh [data=2, model=4].
        let a = Shape::new([8, 16]);
        let m = mesh();
        // Column sharding: (8, 4).
        let col = PartitionSpec::new(&[None, Some("model")]);
        assert_eq!(col.local_shape(&a, &m).unwrap(), Shape::new([8, 4]));
        // Row sharding: (4, 16).
        let row = PartitionSpec::new(&[Some("data"), None]);
        assert_eq!(row.local_shape(&a, &m).unwrap(), Shape::new([4, 16]));
        // 2-D sharding: (4, 4).
        let both = PartitionSpec::new(&[Some("data"), Some("model")]);
        assert_eq!(both.local_shape(&a, &m).unwrap(), Shape::new([4, 4]));
    }

    #[test]
    fn indivisible_rejected() {
        let a = Shape::new([6, 16]);
        let spec = PartitionSpec::new(&[None, Some("model")]);
        // 16 % 4 == 0, fine:
        assert!(spec.local_shape(&a, &mesh()).is_ok());
        let bad = PartitionSpec::new(&[Some("model"), None]);
        // 6 % 4 != 0:
        assert!(matches!(
            bad.local_shape(&a, &mesh()),
            Err(MeshError::Indivisible {
                dim: 6,
                axis_size: 4
            })
        ));
    }

    #[test]
    fn unknown_axis_rejected() {
        let a = Shape::new([8, 8]);
        let spec = PartitionSpec::new(&[Some("nonexistent"), None]);
        assert!(spec.local_shape(&a, &mesh()).is_err());
        assert!(spec.num_shards(&mesh()).is_err());
    }

    #[test]
    fn num_shards_and_replication() {
        let m = mesh();
        assert_eq!(PartitionSpec::replicated(2).num_shards(&m).unwrap(), 1);
        assert_eq!(
            PartitionSpec::new(&[None, Some("model")])
                .num_shards(&m)
                .unwrap(),
            4
        );
        assert_eq!(
            PartitionSpec::new(&[Some("data"), Some("model")])
                .num_shards(&m)
                .unwrap(),
            8
        );
    }

    #[test]
    fn logical_resolution() {
        // Figure 1: batch ⊳ data, mlp ⊳ model; emb unmapped → replicated.
        let rules = AxisRules::new(&[("batch", "data"), ("mlp", "model")]);
        let x = LogicalAxes::new(&[Some("batch"), Some("emb")]);
        assert_eq!(x.resolve(&rules), PartitionSpec::new(&[Some("data"), None]));
        let w1 = LogicalAxes::new(&[Some("emb"), Some("mlp")]);
        assert_eq!(
            w1.resolve(&rules),
            PartitionSpec::new(&[None, Some("model")])
        );
        let w2 = LogicalAxes::new(&[Some("mlp"), Some("emb")]);
        assert_eq!(
            w2.resolve(&rules),
            PartitionSpec::new(&[Some("model"), None])
        );
    }

    #[test]
    fn display() {
        let spec = PartitionSpec::new(&[Some("data"), None]);
        assert_eq!(spec.to_string(), "P(\"data\", None)");
    }
}
