//! Expert-parallelism (MoE) cost modeling.
//!
//! The paper's §2.1 closes by noting that the named-axis programming
//! model also covers Expert Parallelism (Lepikhin et al., 2020), where
//! expert weights and intermediate activations are sharded and multiplied
//! in parallel. The defining communication pattern is a pair of
//! all-to-alls per MoE layer: tokens are *dispatched* to the ranks
//! holding their routed experts and the expert outputs are *combined*
//! back. This module prices that pattern on the cluster's links so MoE
//! variants can be explored on the same performance model.

use crate::collective::{collective_time, Collective, LinkSpec};

/// One mixture-of-experts layer's parallel configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoeLayerConfig {
    /// Total experts in the layer.
    pub n_experts: usize,
    /// Expert-parallel degree (ranks the experts are spread over).
    pub ep_degree: usize,
    /// Tokens routed per layer invocation (per pipeline microbatch).
    pub tokens: usize,
    /// Hidden (model) dimension.
    pub hidden: usize,
    /// Expert FFN inner dimension.
    pub ffn_hidden: usize,
    /// Top-k routing fan-out.
    pub top_k: usize,
    /// Capacity factor: how much per-expert buffer slack is provisioned.
    pub capacity_factor: f64,
}

impl MoeLayerConfig {
    /// Tokens each rank sends through the dispatch all-to-all (top-k
    /// routing fans each token out `top_k` times, padded by the capacity
    /// factor).
    pub fn dispatched_tokens(&self) -> f64 {
        self.tokens as f64 * self.top_k as f64 * self.capacity_factor
    }

    /// Bytes per rank crossing the network in ONE all-to-all
    /// (dispatch or combine), with `elem_bytes`-wide activations.
    pub fn all_to_all_bytes(&self, elem_bytes: usize) -> f64 {
        self.dispatched_tokens() * self.hidden as f64 * elem_bytes as f64 / self.ep_degree as f64
    }

    /// Communication time of one MoE layer (dispatch + combine
    /// all-to-alls, forward; the backward pair costs the same again and
    /// is typically accounted by doubling).
    pub fn comm_time(&self, elem_bytes: usize, link: LinkSpec) -> f64 {
        2.0 * collective_time(
            Collective::AllToAll,
            self.all_to_all_bytes(elem_bytes),
            self.ep_degree,
            link,
        )
    }

    /// Per-rank expert GEMM FLOPs of one forward invocation (two
    /// matmuls per expert MLP over the rank's share of dispatched
    /// tokens).
    pub fn flops_per_rank(&self) -> f64 {
        let tokens_per_rank = self.dispatched_tokens() / self.ep_degree as f64;
        2.0 * tokens_per_rank * self.hidden as f64 * self.ffn_hidden as f64 * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(ep: usize) -> MoeLayerConfig {
        MoeLayerConfig {
            n_experts: 64,
            ep_degree: ep,
            tokens: 8192,
            hidden: 4096,
            ffn_hidden: 16384,
            top_k: 2,
            capacity_factor: 1.25,
        }
    }

    #[test]
    fn higher_ep_spreads_compute() {
        assert!(
            (cfg(8).flops_per_rank() / cfg(16).flops_per_rank() - 2.0).abs() < 1e-9,
            "doubling EP halves per-rank expert flops"
        );
    }

    #[test]
    fn single_rank_has_no_comm() {
        assert_eq!(cfg(1).comm_time(2, LinkSpec::infiniband()), 0.0);
    }

    #[test]
    fn comm_grows_with_top_k() {
        let base = cfg(8);
        let topk4 = MoeLayerConfig { top_k: 4, ..base };
        assert!(
            topk4.comm_time(2, LinkSpec::infiniband()) > base.comm_time(2, LinkSpec::infiniband())
        );
    }

    #[test]
    fn dispatch_volume_accounts_for_capacity() {
        let c = cfg(8);
        assert!((c.dispatched_tokens() - 8192.0 * 2.0 * 1.25).abs() < 1e-9);
    }

    #[test]
    fn ib_all_to_all_is_millisecond_scale() {
        // ~10 MB per rank over NDR400: sub-millisecond wire time plus
        // latency steps — sanity bound, not a calibration claim.
        let t = cfg(8).comm_time(2, LinkSpec::infiniband());
        assert!(t > 1e-5 && t < 1e-2, "t = {t}");
    }
}
