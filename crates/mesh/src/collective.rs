//! Collective operations, link classes, and their cost models.
//!
//! These analytic costs feed the `raxpp-simcluster` discrete-event model:
//! tensor-parallel collectives *inside* an SPMD task, data-parallel
//! gradient reductions, and the pipeline's point-to-point transfers. Ring
//! formulas follow the standard NCCL analysis.

use std::fmt;

/// Kind of collective communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Collective {
    /// Sum-reduce, result replicated on every rank.
    AllReduce,
    /// Every rank ends with the concatenation of all shards.
    AllGather,
    /// Sum-reduce, result sharded across ranks.
    ReduceScatter,
    /// Each rank sends a distinct shard to every other rank.
    AllToAll,
}

impl fmt::Display for Collective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Collective::AllReduce => "all_reduce",
            Collective::AllGather => "all_gather",
            Collective::ReduceScatter => "reduce_scatter",
            Collective::AllToAll => "all_to_all",
        };
        write!(f, "{name}")
    }
}

/// A communication link class with its effective bandwidth and latency.
///
/// Bandwidths are *algorithm* bandwidths per GPU (the busbw NCCL reports),
/// not signaling rates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Effective per-GPU bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-message latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// NVLink/NVSwitch within a DGX H100 node: ~450 GB/s effective
    /// all-reduce bandwidth per GPU, sub-10µs latency.
    pub fn nvlink() -> LinkSpec {
        LinkSpec {
            bandwidth: 450e9,
            latency: 5e-6,
        }
    }

    /// InfiniBand NDR400 across nodes (the EOS cluster fabric, paper §5):
    /// 400 Gb/s per GPU ≈ 50 GB/s, with higher latency.
    pub fn infiniband() -> LinkSpec {
        LinkSpec {
            bandwidth: 50e9,
            latency: 15e-6,
        }
    }

    /// Time for a point-to-point transfer of `bytes`.
    pub fn p2p_time(&self, bytes: f64) -> f64 {
        self.latency + bytes / self.bandwidth
    }
}

/// Time for `collective` over `bytes` per rank among `n_ranks` on `link`,
/// using ring-algorithm transfer volumes:
///
/// * all-reduce moves `2 (n-1)/n` of the buffer per rank,
/// * all-gather / reduce-scatter move `(n-1)/n`,
/// * all-to-all moves `(n-1)/n` (balanced).
pub fn collective_time(collective: Collective, bytes: f64, n_ranks: usize, link: LinkSpec) -> f64 {
    if n_ranks <= 1 {
        return 0.0;
    }
    let n = n_ranks as f64;
    let steps = n - 1.0;
    let volume_factor = match collective {
        Collective::AllReduce => 2.0 * steps / n,
        Collective::AllGather | Collective::ReduceScatter | Collective::AllToAll => steps / n,
    };
    let latency_steps = match collective {
        Collective::AllReduce => 2.0 * steps,
        _ => steps,
    };
    latency_steps * link.latency + volume_factor * bytes / link.bandwidth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_free() {
        assert_eq!(
            collective_time(Collective::AllReduce, 1e9, 1, LinkSpec::nvlink()),
            0.0
        );
    }

    #[test]
    fn allreduce_twice_allgather() {
        let ag = collective_time(Collective::AllGather, 1e9, 8, LinkSpec::nvlink());
        let ar = collective_time(Collective::AllReduce, 1e9, 8, LinkSpec::nvlink());
        // Ring all-reduce = reduce-scatter + all-gather.
        assert!((ar - 2.0 * ag).abs() / ar < 1e-6);
    }

    #[test]
    fn bandwidth_bound_large_messages() {
        // 1 GB all-reduce over 8 NVLink ranks: 2*(7/8)*1e9/450e9 ≈ 3.9 ms.
        let t = collective_time(Collective::AllReduce, 1e9, 8, LinkSpec::nvlink());
        assert!(t > 3.5e-3 && t < 4.5e-3, "t = {t}");
    }

    #[test]
    fn ib_slower_than_nvlink() {
        let nv = collective_time(Collective::AllReduce, 1e8, 8, LinkSpec::nvlink());
        let ib = collective_time(Collective::AllReduce, 1e8, 8, LinkSpec::infiniband());
        assert!(ib > 5.0 * nv);
    }

    #[test]
    fn p2p_includes_latency() {
        let link = LinkSpec {
            bandwidth: 1e9,
            latency: 1e-3,
        };
        assert!((link.p2p_time(1e6) - (1e-3 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn more_ranks_cost_more_latency() {
        let small = collective_time(Collective::AllReduce, 1e3, 2, LinkSpec::infiniband());
        let large = collective_time(Collective::AllReduce, 1e3, 64, LinkSpec::infiniband());
        assert!(large > small);
    }
}
