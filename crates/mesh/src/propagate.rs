//! Whole-graph sharding propagation: the GSPMD behaviour of paper §2.1.
//!
//! Given input shardings (from named-axis annotations resolved against a
//! mesh), propagate a [`PartitionSpec`] through every equation of a
//! `Jaxpr`, inserting collectives exactly where the SPMD computation
//! needs them — e.g. the single all-reduce of Figure 1c's tensor-parallel
//! FFN. The result also carries per-device FLOP and communication-time
//! estimates, which is what the performance model consumes.

use raxpp_ir::{Jaxpr, Prim, Shape, VarId};

use crate::collective::{collective_time, Collective, LinkSpec};
use crate::mesh::{Mesh, MeshError};
use crate::sharding::PartitionSpec;
use crate::spmd::{plan_matmul, CollectiveOp, Operand};

/// A collective inserted at a specific equation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlacedCollective {
    /// Index of the equation it attaches to.
    pub eqn: usize,
    /// The collective.
    pub op: CollectiveOp,
    /// Number of elements moved per participating device.
    pub local_numel: usize,
}

/// The result of propagating shardings through a graph.
#[derive(Debug, Clone)]
pub struct ShardingPlan {
    /// Sharding of every variable (indexed by `VarId`).
    pub var_specs: Vec<PartitionSpec>,
    /// Collectives inserted, in execution order.
    pub collectives: Vec<PlacedCollective>,
    /// Per-device FLOPs of the partitioned computation.
    pub local_flops: u64,
}

impl ShardingPlan {
    /// Sharding of one variable.
    pub fn spec(&self, v: VarId) -> &PartitionSpec {
        &self.var_specs[v.index()]
    }

    /// Total communication time under `link` with `elem_bytes`-sized
    /// elements.
    pub fn comm_time(&self, mesh: &Mesh, elem_bytes: usize, link: LinkSpec) -> f64 {
        self.collectives
            .iter()
            .map(|c| {
                let ranks = mesh.axis_size(&c.op.axis).unwrap_or(1);
                collective_time(c.op.kind, (c.local_numel * elem_bytes) as f64, ranks, link)
            })
            .sum()
    }
}

fn local_numel(shape: &Shape, spec: &PartitionSpec, mesh: &Mesh) -> Result<usize, MeshError> {
    Ok(spec.local_shape(shape, mesh)?.numel())
}

/// Replicated batched-matmul flops: 2 · lhs numel · n.
fn in_numel_flops(jaxpr: &Jaxpr, eqn: &raxpp_ir::Eqn) -> u64 {
    let rhs = jaxpr.shape(eqn.inputs[1]);
    2 * jaxpr.shape(eqn.inputs[0]).numel() as u64 * rhs.dim(rhs.rank() - 1) as u64
}

/// Gathers `spec`'s sharded dimension `dim`, recording the collective.
fn gather_dim(
    spec: &PartitionSpec,
    dim: usize,
    eqn: usize,
    operand: Operand,
    shape: &Shape,
    mesh: &Mesh,
    out: &mut Vec<PlacedCollective>,
) -> Result<PartitionSpec, MeshError> {
    let Some(axis) = spec.axis(dim) else {
        return Ok(spec.clone());
    };
    let axis = axis.to_string();
    let numel = local_numel(shape, spec, mesh)?;
    out.push(PlacedCollective {
        eqn,
        op: CollectiveOp {
            kind: Collective::AllGather,
            axis: axis.clone(),
            operand,
        },
        local_numel: numel,
    });
    let dims: Vec<Option<&str>> = (0..spec.rank())
        .map(|d| if d == dim { None } else { spec.axis(d) })
        .collect();
    Ok(PartitionSpec::new(&dims))
}

/// Reconciles two elementwise operand specs: dimensions where they agree
/// keep their sharding; conflicting dimensions are all-gathered to
/// replicated on whichever operand is sharded.
#[allow(clippy::too_many_arguments)]
fn reconcile_elementwise(
    a: &PartitionSpec,
    b: &PartitionSpec,
    a_shape: &Shape,
    b_shape: &Shape,
    eqn: usize,
    mesh: &Mesh,
    out: &mut Vec<PlacedCollective>,
) -> Result<PartitionSpec, MeshError> {
    let mut a = a.clone();
    let mut b = b.clone();
    for d in 0..a.rank() {
        if a.axis(d) != b.axis(d) {
            if a.axis(d).is_some() {
                a = gather_dim(&a, d, eqn, Operand::Lhs, a_shape, mesh, out)?;
            }
            if b.axis(d).is_some() {
                b = gather_dim(&b, d, eqn, Operand::Rhs, b_shape, mesh, out)?;
            }
        }
    }
    Ok(a)
}

/// Propagates `in_specs` through `jaxpr` on `mesh`.
///
/// Reshape results are conservatively replicated (their operand is
/// gathered first) — the one case where this pass is weaker than XLA's
/// partitioner, and irrelevant for the transformer workloads modeled
/// here.
///
/// # Errors
///
/// Returns [`MeshError`] for rank mismatches, unknown axes, or
/// non-divisible shardings.
pub fn propagate_sharding(
    jaxpr: &Jaxpr,
    in_specs: &[PartitionSpec],
    mesh: &Mesh,
) -> Result<ShardingPlan, MeshError> {
    if in_specs.len() != jaxpr.invars().len() {
        return Err(MeshError::BadAxis(format!(
            "expected {} input specs, got {}",
            jaxpr.invars().len(),
            in_specs.len()
        )));
    }
    let mut specs: Vec<PartitionSpec> = (0..jaxpr.num_vars())
        .map(|_| PartitionSpec::replicated(0))
        .collect();
    for (&v, spec) in jaxpr.invars().iter().zip(in_specs) {
        if spec.rank() != jaxpr.shape(v).rank() {
            return Err(MeshError::BadAxis(format!(
                "input spec rank {} does not match variable rank {}",
                spec.rank(),
                jaxpr.shape(v).rank()
            )));
        }
        // Validate divisibility up front.
        spec.local_shape(jaxpr.shape(v), mesh)?;
        specs[v.index()] = spec.clone();
    }

    let mut collectives = Vec::new();
    let mut local_flops: u64 = 0;

    for (ei, eqn) in jaxpr.eqns().iter().enumerate() {
        let out_shape = jaxpr.shape(eqn.output).clone();
        let out_spec: PartitionSpec = match &eqn.prim {
            Prim::Add | Prim::Sub | Prim::Mul | Prim::Div => {
                let a = specs[eqn.inputs[0].index()].clone();
                let b = specs[eqn.inputs[1].index()].clone();
                let merged = reconcile_elementwise(
                    &a,
                    &b,
                    jaxpr.shape(eqn.inputs[0]),
                    jaxpr.shape(eqn.inputs[1]),
                    ei,
                    mesh,
                    &mut collectives,
                )?;
                local_flops += local_numel(&out_shape, &merged, mesh)? as u64;
                merged
            }
            Prim::MatMul => {
                let a = specs[eqn.inputs[0].index()].clone();
                let b = specs[eqn.inputs[1].index()].clone();
                let plan = match plan_matmul(&a, &b, mesh) {
                    Ok(p) => p,
                    Err(_) => {
                        // Incompatible contraction shardings: gather the
                        // lhs contraction dim and retry.
                        let a2 = gather_dim(
                            &a,
                            1,
                            ei,
                            Operand::Lhs,
                            jaxpr.shape(eqn.inputs[0]),
                            mesh,
                            &mut collectives,
                        )?;
                        plan_matmul(&a2, &b, mesh)?
                    }
                };
                for op in &plan.collectives {
                    let (shape, spec) = match op.operand {
                        Operand::Lhs => (jaxpr.shape(eqn.inputs[0]), &a),
                        Operand::Rhs => (jaxpr.shape(eqn.inputs[1]), &b),
                        Operand::Out => (&out_shape, &plan.out_spec),
                    };
                    collectives.push(PlacedCollective {
                        eqn: ei,
                        op: op.clone(),
                        local_numel: local_numel(shape, spec, mesh)?,
                    });
                }
                // Local matmul flops from local shapes.
                let la = a.local_shape(jaxpr.shape(eqn.inputs[0]), mesh)?;
                let lb = b.local_shape(jaxpr.shape(eqn.inputs[1]), mesh)?;
                local_flops += 2 * la.dim(0) as u64 * la.dim(1) as u64 * lb.dim(1) as u64;
                plan.out_spec
            }
            Prim::Transpose => {
                let a = &specs[eqn.inputs[0].index()];
                let r = a.rank();
                let dims: Vec<Option<&str>> = (0..r)
                    .map(|d| {
                        if d == r - 2 {
                            a.axis(r - 1)
                        } else if d == r - 1 {
                            a.axis(r - 2)
                        } else {
                            a.axis(d)
                        }
                    })
                    .collect();
                PartitionSpec::new(&dims)
            }
            Prim::Permute { perm } => {
                let a = &specs[eqn.inputs[0].index()];
                let dims: Vec<Option<&str>> = perm.iter().map(|&p| a.axis(p)).collect();
                PartitionSpec::new(&dims)
            }
            Prim::BatchMatMul => {
                // Conservative: gather both operands fully (the paper's
                // workloads shard attention over heads via TP, which the
                // analytic cost model covers; this pass stays exact but
                // pessimistic here).
                let mut a = specs[eqn.inputs[0].index()].clone();
                for d in 0..a.rank() {
                    a = gather_dim(
                        &a,
                        d,
                        ei,
                        Operand::Lhs,
                        jaxpr.shape(eqn.inputs[0]),
                        mesh,
                        &mut collectives,
                    )?;
                }
                let mut bb = specs[eqn.inputs[1].index()].clone();
                for d in 0..bb.rank() {
                    bb = gather_dim(
                        &bb,
                        d,
                        ei,
                        Operand::Rhs,
                        jaxpr.shape(eqn.inputs[1]),
                        mesh,
                        &mut collectives,
                    )?;
                }
                let n = in_numel_flops(jaxpr, eqn);
                local_flops += n;
                PartitionSpec::replicated(out_shape.rank())
            }
            Prim::ReduceSum { axes, keepdims } | Prim::ReduceMax { axes, keepdims } => {
                let a = specs[eqn.inputs[0].index()].clone();
                // Reducing over a sharded axis yields partial results:
                // all-reduce them.
                for &ax in axes {
                    if let Some(mesh_axis) = a.axis(ax) {
                        let reduced_spec: Vec<Option<&str>> = (0..a.rank())
                            .map(|d| if axes.contains(&d) { None } else { a.axis(d) })
                            .collect();
                        let reduced_spec = PartitionSpec::new(&reduced_spec);
                        // Partial result has the output's shape locally.
                        let kept = jaxpr
                            .shape(eqn.inputs[0])
                            .reduced(axes, *keepdims)
                            .map_err(|e| MeshError::BadAxis(e.to_string()))?;
                        let full_spec = if *keepdims {
                            reduced_spec.clone()
                        } else {
                            let dims: Vec<Option<&str>> = (0..a.rank())
                                .filter(|d| !axes.contains(d))
                                .map(|d| a.axis(d))
                                .collect();
                            PartitionSpec::new(&dims)
                        };
                        collectives.push(PlacedCollective {
                            eqn: ei,
                            op: CollectiveOp {
                                kind: Collective::AllReduce,
                                axis: mesh_axis.to_string(),
                                operand: Operand::Out,
                            },
                            local_numel: local_numel(&kept, &full_spec, mesh)?,
                        });
                    }
                }
                local_flops += local_numel(jaxpr.shape(eqn.inputs[0]), &a, mesh)? as u64;
                // Output keeps the non-reduced dims' sharding.
                if *keepdims {
                    let dims: Vec<Option<&str>> = (0..a.rank())
                        .map(|d| if axes.contains(&d) { None } else { a.axis(d) })
                        .collect();
                    PartitionSpec::new(&dims)
                } else {
                    let dims: Vec<Option<&str>> = (0..a.rank())
                        .filter(|d| !axes.contains(d))
                        .map(|d| a.axis(d))
                        .collect();
                    PartitionSpec::new(&dims)
                }
            }
            Prim::Broadcast { shape } => {
                let a = &specs[eqn.inputs[0].index()];
                let offset = shape.rank() - a.rank();
                let dims: Vec<Option<&str>> = (0..shape.rank())
                    .map(|d| if d < offset { None } else { a.axis(d - offset) })
                    .collect();
                local_flops += 0;
                PartitionSpec::new(&dims)
            }
            Prim::Reshape { shape } => {
                // Conservative: gather every sharded dim, output
                // replicated.
                let mut a = specs[eqn.inputs[0].index()].clone();
                for d in 0..a.rank() {
                    a = gather_dim(
                        &a,
                        d,
                        ei,
                        Operand::Lhs,
                        jaxpr.shape(eqn.inputs[0]),
                        mesh,
                        &mut collectives,
                    )?;
                }
                PartitionSpec::replicated(shape.rank())
            }
            Prim::Fill { shape, .. } => PartitionSpec::replicated(shape.rank()),
            // Unary elementwise and markers pass the sharding through.
            _ => {
                let a = specs[eqn.inputs[0].index()].clone();
                local_flops += local_numel(&out_shape, &a, mesh)? as u64;
                a
            }
        };
        // Sanity: the output shape must be divisible under its spec.
        out_spec.local_shape(&out_shape, mesh)?;
        specs[eqn.output.index()] = out_spec;
    }

    Ok(ShardingPlan {
        var_specs: specs,
        collectives,
        local_flops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use raxpp_ir::TraceCtx;

    /// Figure 1a's FFN: H2 = relu(X·W1)·W2.
    fn ffn() -> (Jaxpr, VarId) {
        let ctx = TraceCtx::new();
        let x = ctx.input([8, 16]);
        let w1 = ctx.input([16, 32]);
        let w2 = ctx.input([32, 16]);
        let h1 = x.matmul(&w1).unwrap().relu();
        let h2 = h1.matmul(&w2).unwrap();
        let out = h2.var();
        (ctx.finish(&[h2]).unwrap(), out)
    }

    #[test]
    fn data_parallel_ffn_needs_no_collectives() {
        // Figure 1c (top): batch ⊳ data, weights replicated.
        let (jaxpr, out) = ffn();
        let mesh = Mesh::new(&[("data", 2), ("model", 1)]).unwrap();
        let plan = propagate_sharding(
            &jaxpr,
            &[
                PartitionSpec::new(&[Some("data"), None]),
                PartitionSpec::replicated(2),
                PartitionSpec::replicated(2),
            ],
            &mesh,
        )
        .unwrap();
        assert!(plan.collectives.is_empty());
        assert_eq!(plan.spec(out), &PartitionSpec::new(&[Some("data"), None]));
        // Each replica computes half the flops.
        assert_eq!(plan.local_flops, jaxpr.flops() / 2);
    }

    #[test]
    fn tensor_parallel_ffn_needs_one_allreduce() {
        // Figure 1c (bottom): mlp ⊳ model — Megatron column+row parallel
        // with exactly one final all-reduce, inserted automatically.
        let (jaxpr, out) = ffn();
        let mesh = Mesh::new(&[("data", 1), ("model", 2)]).unwrap();
        let plan = propagate_sharding(
            &jaxpr,
            &[
                PartitionSpec::replicated(2),
                PartitionSpec::new(&[None, Some("model")]),
                PartitionSpec::new(&[Some("model"), None]),
            ],
            &mesh,
        )
        .unwrap();
        let ars: Vec<_> = plan
            .collectives
            .iter()
            .filter(|c| c.op.kind == Collective::AllReduce)
            .collect();
        assert_eq!(
            ars.len(),
            1,
            "exactly one all-reduce: {:?}",
            plan.collectives
        );
        assert_eq!(ars[0].op.axis, "model");
        assert_eq!(plan.spec(out), &PartitionSpec::replicated(2));
        // Compute is halved.
        let matmul_flops = 2 * (8 * 16 * 32 + 8 * 32 * 16) as u64;
        assert!(plan.local_flops < matmul_flops);
    }

    #[test]
    fn reduction_over_sharded_axis_allreduces() {
        let ctx = TraceCtx::new();
        let x = ctx.input([8, 16]);
        let s = x.reduce_sum(&[1], false).unwrap();
        let jaxpr = ctx.finish(&[s]).unwrap();
        let mesh = Mesh::new(&[("model", 4)]).unwrap();
        let plan = propagate_sharding(&jaxpr, &[PartitionSpec::new(&[None, Some("model")])], &mesh)
            .unwrap();
        assert_eq!(plan.collectives.len(), 1);
        assert_eq!(plan.collectives[0].op.kind, Collective::AllReduce);
    }

    #[test]
    fn elementwise_conflict_gathers() {
        let ctx = TraceCtx::new();
        let a = ctx.input([8, 8]);
        let b = ctx.input([8, 8]);
        let c = a.add(&b).unwrap();
        let jaxpr = ctx.finish(&[c]).unwrap();
        let mesh = Mesh::new(&[("x", 2)]).unwrap();
        let plan = propagate_sharding(
            &jaxpr,
            &[
                PartitionSpec::new(&[Some("x"), None]),
                PartitionSpec::replicated(2),
            ],
            &mesh,
        )
        .unwrap();
        assert_eq!(plan.collectives.len(), 1);
        assert_eq!(plan.collectives[0].op.kind, Collective::AllGather);
    }

    #[test]
    fn comm_time_is_positive_for_tp() {
        let (jaxpr, _) = ffn();
        let mesh = Mesh::new(&[("model", 2)]).unwrap();
        let plan = propagate_sharding(
            &jaxpr,
            &[
                PartitionSpec::replicated(2),
                PartitionSpec::new(&[None, Some("model")]),
                PartitionSpec::new(&[Some("model"), None]),
            ],
            &mesh,
        )
        .unwrap();
        let t = plan.comm_time(&mesh, 2, LinkSpec::nvlink());
        assert!(t > 0.0);
    }

    #[test]
    fn bad_spec_counts_rejected() {
        let (jaxpr, _) = ffn();
        let mesh = Mesh::new(&[("model", 2)]).unwrap();
        assert!(propagate_sharding(&jaxpr, &[], &mesh).is_err());
        assert!(propagate_sharding(
            &jaxpr,
            &[
                PartitionSpec::replicated(1), // wrong rank
                PartitionSpec::replicated(2),
                PartitionSpec::replicated(2),
            ],
            &mesh,
        )
        .is_err());
    }
}
