//! Logical device meshes with named axes (paper §2.1).

use std::fmt;

/// A physical device identifier (a GPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Error raised by mesh construction and queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MeshError {
    /// Device count does not equal the product of axis sizes, or devices
    /// repeat.
    BadDevices(String),
    /// Axis name unknown or duplicated.
    BadAxis(String),
    /// A sharding referenced a mesh axis that does not divide the array
    /// dimension it was mapped onto.
    Indivisible {
        /// The array dimension size.
        dim: usize,
        /// The mesh axis size.
        axis_size: usize,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::BadDevices(msg) | MeshError::BadAxis(msg) => write!(f, "{msg}"),
            MeshError::Indivisible { dim, axis_size } => {
                write!(
                    f,
                    "dimension {dim} is not divisible by mesh axis size {axis_size}"
                )
            }
        }
    }
}

impl std::error::Error for MeshError {}

/// A logical mesh: a multi-dimensional arrangement of non-repeating
/// devices with *named* axes, e.g. `[("data", 4), ("model", 8)]` over 32
/// GPUs where rows are nodes connected by NVSwitch (paper §2.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mesh {
    axis_names: Vec<String>,
    axis_sizes: Vec<usize>,
    devices: Vec<DeviceId>,
}

impl Mesh {
    /// Builds a mesh from `(axis name, size)` pairs over devices numbered
    /// `0..n` in row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::BadAxis`] for duplicate axis names or zero
    /// sizes.
    pub fn new(axes: &[(&str, usize)]) -> Result<Mesh, MeshError> {
        let n: usize = axes.iter().map(|&(_, s)| s).product();
        let devices = (0..n as u32).map(DeviceId).collect();
        Mesh::with_devices(axes, devices)
    }

    /// Builds a mesh over an explicit device order.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::BadDevices`] when the device count does not
    /// match the axis-size product or devices repeat, and
    /// [`MeshError::BadAxis`] for duplicate/empty axes.
    pub fn with_devices(axes: &[(&str, usize)], devices: Vec<DeviceId>) -> Result<Mesh, MeshError> {
        if axes.is_empty() {
            return Err(MeshError::BadAxis("mesh needs at least one axis".into()));
        }
        let mut names = Vec::with_capacity(axes.len());
        let mut sizes = Vec::with_capacity(axes.len());
        for &(name, size) in axes {
            if size == 0 {
                return Err(MeshError::BadAxis(format!("axis {name} has size 0")));
            }
            if names.iter().any(|n: &String| n == name) {
                return Err(MeshError::BadAxis(format!("duplicate axis {name}")));
            }
            names.push(name.to_string());
            sizes.push(size);
        }
        let expect: usize = sizes.iter().product();
        if devices.len() != expect {
            return Err(MeshError::BadDevices(format!(
                "expected {expect} devices, got {}",
                devices.len()
            )));
        }
        let mut sorted = devices.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != devices.len() {
            return Err(MeshError::BadDevices("devices repeat".into()));
        }
        Ok(Mesh {
            axis_names: names,
            axis_sizes: sizes,
            devices,
        })
    }

    /// Axis names in order.
    pub fn axis_names(&self) -> Vec<&str> {
        self.axis_names.iter().map(String::as_str).collect()
    }

    /// Size of the named axis, if present.
    pub fn axis_size(&self, name: &str) -> Option<usize> {
        self.axis_names
            .iter()
            .position(|n| n == name)
            .map(|i| self.axis_sizes[i])
    }

    /// Position of the named axis.
    pub fn axis_index(&self, name: &str) -> Option<usize> {
        self.axis_names.iter().position(|n| n == name)
    }

    /// Total number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// All devices in row-major mesh order.
    pub fn devices(&self) -> &[DeviceId] {
        &self.devices
    }

    /// Mesh coordinates of the device at flat index `i`.
    pub fn coords(&self, i: usize) -> Vec<usize> {
        let mut rem = i;
        let mut out = vec![0; self.axis_sizes.len()];
        for (axis, &size) in self.axis_sizes.iter().enumerate().rev() {
            out[axis] = rem % size;
            rem /= size;
        }
        out
    }

    /// The groups of devices that communicate when a collective runs over
    /// `axis`: one group per combination of the *other* axes' coordinates.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::BadAxis`] for unknown axes.
    pub fn groups_along(&self, axis: &str) -> Result<Vec<Vec<DeviceId>>, MeshError> {
        let ai = self
            .axis_index(axis)
            .ok_or_else(|| MeshError::BadAxis(format!("unknown axis {axis}")))?;
        let mut groups: Vec<Vec<DeviceId>> = Vec::new();
        let mut key_of = std::collections::HashMap::new();
        for (i, &d) in self.devices.iter().enumerate() {
            let mut c = self.coords(i);
            c[ai] = 0;
            let next = groups.len();
            let g = *key_of.entry(c).or_insert(next);
            if g == groups.len() {
                groups.push(Vec::new());
            }
            groups[g].push(d);
        }
        Ok(groups)
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mesh[")?;
        for (i, (n, s)) in self.axis_names.iter().zip(&self.axis_sizes).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "(\"{n}\", {s})")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query() {
        let m = Mesh::new(&[("data", 4), ("model", 8)]).unwrap();
        assert_eq!(m.num_devices(), 32);
        assert_eq!(m.axis_size("data"), Some(4));
        assert_eq!(m.axis_size("model"), Some(8));
        assert_eq!(m.axis_size("nope"), None);
    }

    #[test]
    fn coords_roundtrip() {
        let m = Mesh::new(&[("a", 2), ("b", 3)]).unwrap();
        assert_eq!(m.coords(0), vec![0, 0]);
        assert_eq!(m.coords(1), vec![0, 1]);
        assert_eq!(m.coords(3), vec![1, 0]);
        assert_eq!(m.coords(5), vec![1, 2]);
    }

    #[test]
    fn groups_along_axes() {
        let m = Mesh::new(&[("data", 2), ("model", 3)]).unwrap();
        let model_groups = m.groups_along("model").unwrap();
        assert_eq!(model_groups.len(), 2);
        assert_eq!(model_groups[0], vec![DeviceId(0), DeviceId(1), DeviceId(2)]);
        let data_groups = m.groups_along("data").unwrap();
        assert_eq!(data_groups.len(), 3);
        assert_eq!(data_groups[0], vec![DeviceId(0), DeviceId(3)]);
        assert!(m.groups_along("x").is_err());
    }

    #[test]
    fn rejects_bad_construction() {
        assert!(Mesh::new(&[]).is_err());
        assert!(Mesh::new(&[("a", 0)]).is_err());
        assert!(Mesh::new(&[("a", 2), ("a", 2)]).is_err());
        assert!(Mesh::with_devices(&[("a", 2)], vec![DeviceId(0)]).is_err());
        assert!(Mesh::with_devices(&[("a", 2)], vec![DeviceId(0), DeviceId(0)]).is_err());
    }
}
