//! `raxpp-mesh` — device meshes, named-axis sharding, and collective
//! planning/cost models: the GSPMD-shaped substrate under RaxPP (paper
//! §2.1).
//!
//! The crate is the *planning* half of RaxPP's tensor parallelism, and
//! it feeds two consumers:
//!
//! * **The executable path.** A [`Mesh`] plus a sharding axis drives
//!   `raxpp-taskgraph`'s `shard_program`, which lowers every pipeline
//!   stage into per-rank shard streams whose collectives are **really
//!   executed** as ring exchanges by the MPMD runtime — bitwise
//!   identical to the unsharded run (the PP×TP composition;
//!   `docs/parallelism.md`). [`AxisRules`] name the logical → mesh axis
//!   assignment a [`raxpp_core::TpConfig`]-style caller uses.
//! * **The performance path.** [`plan_matmul`] decides, per matmul,
//!   the output sharding and the collectives an SPMD partitioner must
//!   insert; [`collective_time`] / [`plan_comm_time`] price them over a
//!   [`LinkSpec`], feeding the `raxpp-simcluster` cluster model (plus
//!   [`propagate_sharding`] for whole-graph planning and
//!   [`MoeLayerConfig`] for expert parallelism).
//!
//! The building blocks: arrays carry [`LogicalAxes`] names,
//! [`AxisRules`] map them to mesh axes, and the resulting
//! [`PartitionSpec`]s determine per-device local shapes
//! ([`PartitionSpec::local_shape`]) and shard counts.
//!
//! [`raxpp_core::TpConfig`]: ../raxpp_core/struct.TpConfig.html
//!
//! # Example: Megatron row-parallel linear needs one all-reduce
//!
//! ```
//! use raxpp_mesh::{plan_matmul, Collective, Mesh, PartitionSpec};
//!
//! let mesh = Mesh::new(&[("data", 1), ("model", 2)])?;
//! let h = PartitionSpec::new(&[None, Some("model")]);
//! let w2 = PartitionSpec::new(&[Some("model"), None]);
//! let plan = plan_matmul(&h, &w2, &mesh)?;
//! assert_eq!(plan.collectives[0].kind, Collective::AllReduce);
//! # Ok::<(), raxpp_mesh::MeshError>(())
//! ```
//!
//! The column-parallel/row-parallel pair — and how the executable
//! lowering realizes the same decomposition with real collectives — is
//! worked through in `docs/parallelism.md`.

#![deny(missing_docs)]

mod collective;
mod expert;
mod mesh;
mod propagate;
mod sharding;
mod spmd;

pub use collective::{collective_time, Collective, LinkSpec};
pub use expert::MoeLayerConfig;
pub use mesh::{DeviceId, Mesh, MeshError};
pub use propagate::{propagate_sharding, PlacedCollective, ShardingPlan};
pub use sharding::{AxisRules, LogicalAxes, PartitionSpec};
pub use spmd::{plan_comm_time, plan_matmul, CollectiveOp, MatmulPlan, Operand};
