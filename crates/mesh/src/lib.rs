//! `raxpp-mesh` — device meshes, named-axis sharding, and collective cost
//! models: the GSPMD-shaped substrate under RaxPP (paper §2.1).
//!
//! The crate models the SPMD half of the paper's system: arrays carry
//! [`LogicalAxes`] names, a partitioning specification ([`AxisRules`])
//! maps them to mesh axes, and the resulting [`PartitionSpec`]s determine
//! per-device shapes plus the collectives an SPMD partitioner must insert
//! ([`plan_matmul`]). Collective and point-to-point timing
//! ([`collective_time`], [`LinkSpec`]) feed the `raxpp-simcluster`
//! performance model.
//!
//! # Example: Megatron row-parallel linear needs one all-reduce
//!
//! ```
//! use raxpp_mesh::{plan_matmul, Collective, Mesh, PartitionSpec};
//!
//! let mesh = Mesh::new(&[("data", 1), ("model", 2)])?;
//! let h = PartitionSpec::new(&[None, Some("model")]);
//! let w2 = PartitionSpec::new(&[Some("model"), None]);
//! let plan = plan_matmul(&h, &w2, &mesh)?;
//! assert_eq!(plan.collectives[0].kind, Collective::AllReduce);
//! # Ok::<(), raxpp_mesh::MeshError>(())
//! ```

#![warn(missing_docs)]

mod collective;
mod expert;
mod mesh;
mod propagate;
mod sharding;
mod spmd;

pub use collective::{collective_time, Collective, LinkSpec};
pub use expert::MoeLayerConfig;
pub use mesh::{DeviceId, Mesh, MeshError};
pub use propagate::{propagate_sharding, PlacedCollective, ShardingPlan};
pub use sharding::{AxisRules, LogicalAxes, PartitionSpec};
pub use spmd::{plan_comm_time, plan_matmul, CollectiveOp, MatmulPlan, Operand};
