//! GSPMD-style SPMD partitioning of matrix multiplies: given operand
//! shardings, decide the output sharding and the collectives the
//! partitioner must insert (paper §2.1 — "XLA inserts them automatically
//! as needed").

use std::fmt;

use raxpp_ir::Shape;

use crate::collective::{collective_time, Collective, LinkSpec};
use crate::mesh::{Mesh, MeshError};
use crate::sharding::PartitionSpec;

/// Which tensor of a matmul a collective applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// The left operand.
    Lhs,
    /// The right operand.
    Rhs,
    /// The result.
    Out,
}

/// One collective the SPMD partitioner inserts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveOp {
    /// The collective kind.
    pub kind: Collective,
    /// The mesh axis it runs over.
    pub axis: String,
    /// The tensor it applies to.
    pub operand: Operand,
}

impl fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] on {:?}", self.kind, self.axis, self.operand)
    }
}

/// The partitioner's decision for one matmul.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatmulPlan {
    /// Sharding of the result.
    pub out_spec: PartitionSpec,
    /// Collectives inserted, in execution order.
    pub collectives: Vec<CollectiveOp>,
}

/// Plans the SPMD execution of `C[m,n] = A[m,k] @ B[k,n]` given operand
/// shardings.
///
/// Handles the patterns used by Megatron-style tensor parallelism and
/// data parallelism:
///
/// * both contraction dims sharded on the same axis → local partial
///   matmuls + **all-reduce** of the result (row-parallel linear);
/// * `B` sharded on its output dim → result column-sharded, no
///   communication (column-parallel linear);
/// * `A` row-sharded on the batch dim → result row-sharded, no
///   communication (data parallelism);
/// * a contraction dim sharded on one side only → **all-gather** that
///   operand first.
///
/// # Errors
///
/// Returns [`MeshError::BadAxis`] when specs rank-mismatch the operands
/// or contraction dims are sharded on *different* mesh axes (unsupported
/// — re-shard first).
pub fn plan_matmul(
    a_spec: &PartitionSpec,
    b_spec: &PartitionSpec,
    mesh: &Mesh,
) -> Result<MatmulPlan, MeshError> {
    if a_spec.rank() != 2 || b_spec.rank() != 2 {
        return Err(MeshError::BadAxis("matmul specs must be rank 2".into()));
    }
    for spec in [a_spec, b_spec] {
        for (_, axis) in spec.sharded_dims() {
            if mesh.axis_size(axis).is_none() {
                return Err(MeshError::BadAxis(format!("unknown mesh axis {axis}")));
            }
        }
    }
    let a_k = a_spec.axis(1);
    let b_k = b_spec.axis(0);
    let mut collectives = Vec::new();

    let contraction_axis = match (a_k, b_k) {
        (Some(x), Some(y)) if x == y => Some(x.to_string()),
        (Some(x), Some(y)) => {
            return Err(MeshError::BadAxis(format!(
                "contraction dim sharded on different axes ({x} vs {y}); reshard first"
            )));
        }
        (Some(x), None) => {
            // A's k sharded, B replicated on k: gather A.
            collectives.push(CollectiveOp {
                kind: Collective::AllGather,
                axis: x.to_string(),
                operand: Operand::Lhs,
            });
            None
        }
        (None, Some(y)) => {
            collectives.push(CollectiveOp {
                kind: Collective::AllGather,
                axis: y.to_string(),
                operand: Operand::Rhs,
            });
            None
        }
        (None, None) => None,
    };

    let mut out_m = a_spec.axis(0).map(str::to_string);
    let mut out_n = b_spec.axis(1).map(str::to_string);
    // The result cannot be sharded twice over one axis; prefer the batch
    // dim and gather the other.
    if out_m.is_some() && out_m == out_n {
        collectives.push(CollectiveOp {
            kind: Collective::AllGather,
            axis: out_n.take().unwrap(),
            operand: Operand::Rhs,
        });
    }
    // A dim sharded over the contraction axis would collide with the
    // partial-sum reduction; gather it.
    if let Some(ref c) = contraction_axis {
        if out_m.as_deref() == Some(c) {
            collectives.push(CollectiveOp {
                kind: Collective::AllGather,
                axis: out_m.take().unwrap(),
                operand: Operand::Lhs,
            });
        }
        if out_n.as_deref() == Some(c) {
            collectives.push(CollectiveOp {
                kind: Collective::AllGather,
                axis: out_n.take().unwrap(),
                operand: Operand::Rhs,
            });
        }
        collectives.push(CollectiveOp {
            kind: Collective::AllReduce,
            axis: c.clone(),
            operand: Operand::Out,
        });
    }

    let out_spec = PartitionSpec::new(&[out_m.as_deref(), out_n.as_deref()]);
    Ok(MatmulPlan {
        out_spec,
        collectives,
    })
}

/// Total communication time of a [`MatmulPlan`] for the given global
/// operand shapes (bytes = local shard size on the wire).
///
/// # Errors
///
/// Returns [`MeshError`] when shapes and specs are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn plan_comm_time(
    plan: &MatmulPlan,
    a_shape: &Shape,
    b_shape: &Shape,
    a_spec: &PartitionSpec,
    b_spec: &PartitionSpec,
    mesh: &Mesh,
    elem_bytes: usize,
    link: LinkSpec,
) -> Result<f64, MeshError> {
    let out_shape = Shape::new([a_shape.dim(0), b_shape.dim(1)]);
    let mut total = 0.0;
    for op in &plan.collectives {
        let ranks = mesh
            .axis_size(&op.axis)
            .ok_or_else(|| MeshError::BadAxis(format!("unknown axis {}", op.axis)))?;
        let local = match op.operand {
            Operand::Lhs => a_spec.local_shape(a_shape, mesh)?,
            Operand::Rhs => b_spec.local_shape(b_shape, mesh)?,
            Operand::Out => plan.out_spec.local_shape(&out_shape, mesh)?,
        };
        let bytes = (local.numel() * elem_bytes) as f64;
        total += collective_time(op.kind, bytes, ranks, link);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(&[("data", 2), ("model", 4)]).unwrap()
    }

    #[test]
    fn column_parallel_needs_no_comm() {
        // Megatron column-parallel: X replicated, W1 sharded on output dim.
        let x = PartitionSpec::replicated(2);
        let w1 = PartitionSpec::new(&[None, Some("model")]);
        let plan = plan_matmul(&x, &w1, &mesh()).unwrap();
        assert!(plan.collectives.is_empty());
        assert_eq!(plan.out_spec, PartitionSpec::new(&[None, Some("model")]));
    }

    #[test]
    fn row_parallel_needs_one_allreduce() {
        // Megatron row-parallel: H sharded on k, W2 sharded on k →
        // one all-reduce of the replicated output (paper §2.1, Fig 1c).
        let h = PartitionSpec::new(&[None, Some("model")]);
        let w2 = PartitionSpec::new(&[Some("model"), None]);
        let plan = plan_matmul(&h, &w2, &mesh()).unwrap();
        assert_eq!(plan.out_spec, PartitionSpec::replicated(2));
        assert_eq!(plan.collectives.len(), 1);
        assert_eq!(plan.collectives[0].kind, Collective::AllReduce);
        assert_eq!(plan.collectives[0].axis, "model");
        assert_eq!(plan.collectives[0].operand, Operand::Out);
    }

    #[test]
    fn data_parallel_shards_batch() {
        let x = PartitionSpec::new(&[Some("data"), None]);
        let w = PartitionSpec::replicated(2);
        let plan = plan_matmul(&x, &w, &mesh()).unwrap();
        assert!(plan.collectives.is_empty());
        assert_eq!(plan.out_spec, PartitionSpec::new(&[Some("data"), None]));
    }

    #[test]
    fn one_sided_contraction_gathers() {
        let a = PartitionSpec::new(&[None, Some("model")]);
        let b = PartitionSpec::replicated(2);
        let plan = plan_matmul(&a, &b, &mesh()).unwrap();
        assert_eq!(plan.collectives.len(), 1);
        assert_eq!(plan.collectives[0].kind, Collective::AllGather);
        assert_eq!(plan.collectives[0].operand, Operand::Lhs);
        assert_eq!(plan.out_spec, PartitionSpec::replicated(2));
    }

    #[test]
    fn mismatched_contraction_axes_rejected() {
        let a = PartitionSpec::new(&[None, Some("data")]);
        let b = PartitionSpec::new(&[Some("model"), None]);
        assert!(plan_matmul(&a, &b, &mesh()).is_err());
    }

    #[test]
    fn conflicting_output_axes_gather_rhs() {
        // Both output dims want "data": keep the batch dim sharded.
        let a = PartitionSpec::new(&[Some("data"), None]);
        let b = PartitionSpec::new(&[None, Some("data")]);
        let plan = plan_matmul(&a, &b, &mesh()).unwrap();
        assert_eq!(plan.out_spec, PartitionSpec::new(&[Some("data"), None]));
        assert_eq!(plan.collectives.len(), 1);
        assert_eq!(plan.collectives[0].kind, Collective::AllGather);
    }

    #[test]
    fn comm_time_row_parallel() {
        let m = mesh();
        let h_shape = Shape::new([128, 1024]);
        let w_shape = Shape::new([1024, 512]);
        let h = PartitionSpec::new(&[None, Some("model")]);
        let w = PartitionSpec::new(&[Some("model"), None]);
        let plan = plan_matmul(&h, &w, &m).unwrap();
        let t =
            plan_comm_time(&plan, &h_shape, &w_shape, &h, &w, &m, 2, LinkSpec::nvlink()).unwrap();
        // all-reduce of the full [128, 512] bf16 output across 4 ranks.
        let expect = collective_time(
            Collective::AllReduce,
            (128 * 512 * 2) as f64,
            4,
            LinkSpec::nvlink(),
        );
        assert!((t - expect).abs() < 1e-12);
    }
}
