//! Optimizers as IR graphs: the "computation after the loop" of the
//! paper's Figure 4 (`state.apply_gradient`), compiled onto the actor
//! that owns each parameter's gradient (placement propagation out of the
//! loop, §3.3).

use raxpp_ir::{GraphBuilder, Jaxpr, Prim, Result, Shape, Tensor, VarId};

/// A first-order optimizer, lowered per parameter into an update graph
/// `(param, grad, state…) → (param', state'…)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent: `p' = p − lr·g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with momentum: `v' = μ·v + g; p' = p − lr·v'`.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient μ.
        momentum: f32,
    },
    /// Adam without bias correction (`m̂ = m`, `v̂ = v` — the common
    /// simplification for steady-state training):
    /// `m' = β₁·m + (1−β₁)·g; v' = β₂·v + (1−β₂)·g²;
    ///  p' = p − lr·m'/(√v' + ε)`.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay β₁.
        beta1: f32,
        /// Second-moment decay β₂.
        beta2: f32,
        /// Numerical-stability term ε.
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with the usual defaults (lr only).
    pub fn adam(lr: f32) -> Optimizer {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Number of per-parameter state tensors (momenta).
    pub fn n_state_slots(&self) -> usize {
        match self {
            Optimizer::Sgd { .. } => 0,
            Optimizer::Momentum { .. } => 1,
            Optimizer::Adam { .. } => 2,
        }
    }

    /// Zero-initialized state tensors for a parameter of `shape`.
    pub fn init_state(&self, shape: &Shape) -> Vec<Tensor> {
        (0..self.n_state_slots())
            .map(|_| Tensor::zeros(shape.clone()))
            .collect()
    }

    /// Emits the optimizer arithmetic on already-built `param`, `grad`,
    /// and state nodes, returning `(param', state'…)` node ids. All
    /// three optimizers are purely elementwise, which is what makes the
    /// ZeRO-1 sharded variant bitwise-exact: computing on a first-dim
    /// slice equals slicing the full-tensor result.
    fn emit_math(
        &self,
        b: &mut GraphBuilder,
        p: VarId,
        g: VarId,
        states: &[VarId],
    ) -> Result<Vec<VarId>> {
        match *self {
            Optimizer::Sgd { lr } => {
                let step = b.emit(Prim::Scale(lr), &[g])?;
                let p2 = b.emit(Prim::Sub, &[p, step])?;
                Ok(vec![p2])
            }
            Optimizer::Momentum { lr, momentum } => {
                let v = states[0];
                let mv = b.emit(Prim::Scale(momentum), &[v])?;
                let v2 = b.emit(Prim::Add, &[mv, g])?;
                let step = b.emit(Prim::Scale(lr), &[v2])?;
                let p2 = b.emit(Prim::Sub, &[p, step])?;
                Ok(vec![p2, v2])
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let (m, v) = (states[0], states[1]);
                let m_decay = b.emit(Prim::Scale(beta1), &[m])?;
                let g_scaled = b.emit(Prim::Scale(1.0 - beta1), &[g])?;
                let m2 = b.emit(Prim::Add, &[m_decay, g_scaled])?;
                let v_decay = b.emit(Prim::Scale(beta2), &[v])?;
                let gg = b.emit(Prim::Mul, &[g, g])?;
                let gg_scaled = b.emit(Prim::Scale(1.0 - beta2), &[gg])?;
                let v2 = b.emit(Prim::Add, &[v_decay, gg_scaled])?;
                let root = b.emit(Prim::Sqrt, &[v2])?;
                let denom = b.emit(Prim::AddScalar(eps), &[root])?;
                let dir = b.emit(Prim::Div, &[m2, denom])?;
                let step = b.emit(Prim::Scale(lr), &[dir])?;
                let p2 = b.emit(Prim::Sub, &[p, step])?;
                Ok(vec![p2, m2, v2])
            }
        }
    }

    /// Builds the update graph for one parameter of `shape`.
    ///
    /// Inputs: `param, grad, state…`; outputs: `param', state'…`.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors (none occur for valid
    /// shapes).
    pub fn update_jaxpr(&self, shape: &Shape) -> Result<Jaxpr> {
        let mut b = GraphBuilder::new();
        let p = b.input(shape.clone());
        let g = b.input(shape.clone());
        let states: Vec<VarId> = (0..self.n_state_slots())
            .map(|_| b.input(shape.clone()))
            .collect();
        let outs = self.emit_math(&mut b, p, g, &states)?;
        b.finish(outs)
    }

    /// Builds the ZeRO-1 sharded update graph for one parameter of
    /// `shape`, owning the *first-dim* block `[start, start+len)`.
    ///
    /// The shard axis is dim 0 because it is the one axis the
    /// column-parallel tensor sharding never splits: parameters and
    /// optimizer state are full-shape replicated across TP ranks, so
    /// first-dim slices are identical on every rank and ZeRO-1 composes
    /// with any `tp` degree.
    ///
    /// Inputs: `param, grad` at full shape plus `state…` at the slice
    /// shape; outputs: the replica's parameter *contribution* — its
    /// updated slice padded back to full shape with `-0.0`, ready for a
    /// replica-ascending data-parallel all-reduce to fold into the full
    /// parameter — plus the updated state slices. Because the optimizer
    /// math is elementwise, the assembled parameter is bitwise-identical
    /// to the unsharded [`Optimizer::update_jaxpr`] result.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors (none occur for valid
    /// shapes and in-range slices).
    pub fn sharded_update_jaxpr(&self, shape: &Shape, start: usize, len: usize) -> Result<Jaxpr> {
        assert!(shape.rank() >= 1, "sharded update needs rank >= 1");
        let full = shape.dim(0);
        let mut dims = shape.dims().to_vec();
        dims[0] = len;
        let slice_shape = Shape::new(dims);
        let mut b = GraphBuilder::new();
        let p = b.input(shape.clone());
        let g = b.input(shape.clone());
        let states: Vec<VarId> = (0..self.n_state_slots())
            .map(|_| b.input(slice_shape.clone()))
            .collect();
        let ps = b.emit(Prim::SliceFirst { start, len }, &[p])?;
        let gs = b.emit(Prim::SliceFirst { start, len }, &[g])?;
        let mut outs = self.emit_math(&mut b, ps, gs, &states)?;
        outs[0] = b.emit(
            Prim::PadFirst {
                start,
                full,
                value: -0.0,
            },
            &[outs[0]],
        )?;
        b.finish(outs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raxpp_ir::eval;

    #[test]
    fn sgd_update() {
        let j = Optimizer::Sgd { lr: 0.1 }
            .update_jaxpr(&Shape::new([2]))
            .unwrap();
        let out = eval(
            &j,
            &[
                Tensor::from_vec([2], vec![1.0, 2.0]).unwrap(),
                Tensor::from_vec([2], vec![10.0, -10.0]).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(out[0].data(), &[0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let opt = Optimizer::Momentum {
            lr: 1.0,
            momentum: 0.5,
        };
        let j = opt.update_jaxpr(&Shape::new([1])).unwrap();
        let p = Tensor::from_vec([1], vec![0.0]).unwrap();
        let g = Tensor::from_vec([1], vec![1.0]).unwrap();
        let v0 = Tensor::zeros([1]);
        let step1 = eval(&j, &[p, g.clone(), v0]).unwrap();
        // v1 = 1, p1 = -1.
        assert_eq!(step1[1].data(), &[1.0]);
        assert_eq!(step1[0].data(), &[-1.0]);
        let step2 = eval(&j, &[step1[0].clone(), g, step1[1].clone()]).unwrap();
        // v2 = 1.5, p2 = -2.5.
        assert_eq!(step2[1].data(), &[1.5]);
        assert_eq!(step2[0].data(), &[-2.5]);
    }

    #[test]
    fn adam_moves_against_gradient() {
        let opt = Optimizer::adam(0.01);
        let j = opt.update_jaxpr(&Shape::new([2])).unwrap();
        let p = Tensor::from_vec([2], vec![1.0, -1.0]).unwrap();
        let g = Tensor::from_vec([2], vec![2.0, -3.0]).unwrap();
        let out = eval(&j, &[p.clone(), g, Tensor::zeros([2]), Tensor::zeros([2])]).unwrap();
        assert!(out[0].data()[0] < p.data()[0]);
        assert!(out[0].data()[1] > p.data()[1]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn sharded_update_assembles_bitwise() {
        // Folding the -0.0-padded replica contributions rank-ascending
        // must reproduce the unsharded update bit for bit — the ZeRO-1
        // half of the DP bitwise contract.
        for opt in [
            Optimizer::Sgd { lr: 0.1 },
            Optimizer::Momentum {
                lr: 0.1,
                momentum: 0.9,
            },
            Optimizer::adam(0.01),
        ] {
            let shape = Shape::new([7, 2]); // uneven dim-0 split: 7 = 4 + 3
            let p = Tensor::from_vec(
                [7, 2],
                (0..14).map(|i| (i as f32 - 6.3) * 0.37).collect::<Vec<_>>(),
            )
            .unwrap();
            let g = Tensor::from_vec(
                [7, 2],
                (0..14).map(|i| (i as f32 * 1.13).sin()).collect::<Vec<_>>(),
            )
            .unwrap();
            let states = opt.init_state(&shape);
            let full_j = opt.update_jaxpr(&shape).unwrap();
            let mut full_in = vec![p.clone(), g.clone()];
            full_in.extend(states.iter().cloned());
            let full_out = eval(&full_j, &full_in).unwrap();

            let replicas = 2;
            let mut assembled: Option<Tensor> = None;
            for rep in 0..replicas {
                let (start, len) = if rep == 0 { (0, 4) } else { (4, 3) };
                let j = opt.sharded_update_jaxpr(&shape, start, len).unwrap();
                let slice_states = opt.init_state(&Shape::new([len, 2]));
                let mut inputs = vec![p.clone(), g.clone()];
                inputs.extend(slice_states);
                let out = eval(&j, &inputs).unwrap();
                assembled = Some(match assembled {
                    None => out[0].clone(),
                    Some(a) => a.zip(&out[0], |x, y| x + y).unwrap(),
                });
            }
            assert_eq!(
                assembled.unwrap().data(),
                full_out[0].data(),
                "{opt:?} sharded update diverged from unsharded"
            );
        }
    }

    #[test]
    fn state_slot_counts() {
        assert_eq!(Optimizer::Sgd { lr: 0.1 }.n_state_slots(), 0);
        assert_eq!(
            Optimizer::Momentum {
                lr: 0.1,
                momentum: 0.9
            }
            .n_state_slots(),
            1
        );
        assert_eq!(Optimizer::adam(0.1).n_state_slots(), 2);
        assert_eq!(Optimizer::adam(0.1).init_state(&Shape::new([3])).len(), 2);
    }
}
