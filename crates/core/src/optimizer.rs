//! Optimizers as IR graphs: the "computation after the loop" of the
//! paper's Figure 4 (`state.apply_gradient`), compiled onto the actor
//! that owns each parameter's gradient (placement propagation out of the
//! loop, §3.3).

use raxpp_ir::{GraphBuilder, Jaxpr, Prim, Result, Shape, Tensor};

/// A first-order optimizer, lowered per parameter into an update graph
/// `(param, grad, state…) → (param', state'…)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent: `p' = p − lr·g`.
    Sgd {
        /// Learning rate.
        lr: f32,
    },
    /// SGD with momentum: `v' = μ·v + g; p' = p − lr·v'`.
    Momentum {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient μ.
        momentum: f32,
    },
    /// Adam without bias correction (`m̂ = m`, `v̂ = v` — the common
    /// simplification for steady-state training):
    /// `m' = β₁·m + (1−β₁)·g; v' = β₂·v + (1−β₂)·g²;
    ///  p' = p − lr·m'/(√v' + ε)`.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay β₁.
        beta1: f32,
        /// Second-moment decay β₂.
        beta2: f32,
        /// Numerical-stability term ε.
        eps: f32,
    },
}

impl Optimizer {
    /// Adam with the usual defaults (lr only).
    pub fn adam(lr: f32) -> Optimizer {
        Optimizer::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Number of per-parameter state tensors (momenta).
    pub fn n_state_slots(&self) -> usize {
        match self {
            Optimizer::Sgd { .. } => 0,
            Optimizer::Momentum { .. } => 1,
            Optimizer::Adam { .. } => 2,
        }
    }

    /// Zero-initialized state tensors for a parameter of `shape`.
    pub fn init_state(&self, shape: &Shape) -> Vec<Tensor> {
        (0..self.n_state_slots())
            .map(|_| Tensor::zeros(shape.clone()))
            .collect()
    }

    /// Builds the update graph for one parameter of `shape`.
    ///
    /// Inputs: `param, grad, state…`; outputs: `param', state'…`.
    ///
    /// # Errors
    ///
    /// Propagates graph-construction errors (none occur for valid
    /// shapes).
    pub fn update_jaxpr(&self, shape: &Shape) -> Result<Jaxpr> {
        let mut b = GraphBuilder::new();
        let p = b.input(shape.clone());
        let g = b.input(shape.clone());
        match *self {
            Optimizer::Sgd { lr } => {
                let step = b.emit(Prim::Scale(lr), &[g])?;
                let p2 = b.emit(Prim::Sub, &[p, step])?;
                b.finish(vec![p2])
            }
            Optimizer::Momentum { lr, momentum } => {
                let v = b.input(shape.clone());
                let mv = b.emit(Prim::Scale(momentum), &[v])?;
                let v2 = b.emit(Prim::Add, &[mv, g])?;
                let step = b.emit(Prim::Scale(lr), &[v2])?;
                let p2 = b.emit(Prim::Sub, &[p, step])?;
                b.finish(vec![p2, v2])
            }
            Optimizer::Adam {
                lr,
                beta1,
                beta2,
                eps,
            } => {
                let m = b.input(shape.clone());
                let v = b.input(shape.clone());
                let m_decay = b.emit(Prim::Scale(beta1), &[m])?;
                let g_scaled = b.emit(Prim::Scale(1.0 - beta1), &[g])?;
                let m2 = b.emit(Prim::Add, &[m_decay, g_scaled])?;
                let v_decay = b.emit(Prim::Scale(beta2), &[v])?;
                let gg = b.emit(Prim::Mul, &[g, g])?;
                let gg_scaled = b.emit(Prim::Scale(1.0 - beta2), &[gg])?;
                let v2 = b.emit(Prim::Add, &[v_decay, gg_scaled])?;
                let root = b.emit(Prim::Sqrt, &[v2])?;
                let denom = b.emit(Prim::AddScalar(eps), &[root])?;
                let dir = b.emit(Prim::Div, &[m2, denom])?;
                let step = b.emit(Prim::Scale(lr), &[dir])?;
                let p2 = b.emit(Prim::Sub, &[p, step])?;
                b.finish(vec![p2, m2, v2])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raxpp_ir::eval;

    #[test]
    fn sgd_update() {
        let j = Optimizer::Sgd { lr: 0.1 }
            .update_jaxpr(&Shape::new([2]))
            .unwrap();
        let out = eval(
            &j,
            &[
                Tensor::from_vec([2], vec![1.0, 2.0]).unwrap(),
                Tensor::from_vec([2], vec![10.0, -10.0]).unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(out[0].data(), &[0.0, 3.0]);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let opt = Optimizer::Momentum {
            lr: 1.0,
            momentum: 0.5,
        };
        let j = opt.update_jaxpr(&Shape::new([1])).unwrap();
        let p = Tensor::from_vec([1], vec![0.0]).unwrap();
        let g = Tensor::from_vec([1], vec![1.0]).unwrap();
        let v0 = Tensor::zeros([1]);
        let step1 = eval(&j, &[p, g.clone(), v0]).unwrap();
        // v1 = 1, p1 = -1.
        assert_eq!(step1[1].data(), &[1.0]);
        assert_eq!(step1[0].data(), &[-1.0]);
        let step2 = eval(&j, &[step1[0].clone(), g, step1[1].clone()]).unwrap();
        // v2 = 1.5, p2 = -2.5.
        assert_eq!(step2[1].data(), &[1.5]);
        assert_eq!(step2[0].data(), &[-2.5]);
    }

    #[test]
    fn adam_moves_against_gradient() {
        let opt = Optimizer::adam(0.01);
        let j = opt.update_jaxpr(&Shape::new([2])).unwrap();
        let p = Tensor::from_vec([2], vec![1.0, -1.0]).unwrap();
        let g = Tensor::from_vec([2], vec![2.0, -3.0]).unwrap();
        let out = eval(&j, &[p.clone(), g, Tensor::zeros([2]), Tensor::zeros([2])]).unwrap();
        assert!(out[0].data()[0] < p.data()[0]);
        assert!(out[0].data()[1] > p.data()[1]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn state_slot_counts() {
        assert_eq!(Optimizer::Sgd { lr: 0.1 }.n_state_slots(), 0);
        assert_eq!(
            Optimizer::Momentum {
                lr: 0.1,
                momentum: 0.9
            }
            .n_state_slots(),
            1
        );
        assert_eq!(Optimizer::adam(0.1).n_state_slots(), 2);
        assert_eq!(Optimizer::adam(0.1).init_state(&Shape::new([3])).len(), 2);
    }
}
