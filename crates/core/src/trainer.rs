//! The end-to-end training facade: trace → partition → differentiate →
//! unroll → append optimizer → run on the MPMD runtime.
//!
//! This is the Rust analogue of the paper's Figure 4 workflow:
//! `RemoteMesh::distributed(train_step)` returns a compiled step
//! function whose every invocation dispatches one fused instruction
//! stream per actor.

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use raxpp_ir::{IrError, Jaxpr, Shape, Tensor};
use raxpp_mesh::{AxisRules, Mesh};
use raxpp_runtime::{
    Metrics, RebalanceReport, Runtime, RuntimeError, StepEvent, StepStats, StepTrace,
    TransportKind, TransportStats,
};
use raxpp_sched::{DpMap, Schedule, TpMap};
use raxpp_taskgraph::{
    bucket_collectives, check_send_recv_order, dp_split, dp_treated, insert_frees, pipeline_model,
    replicate_program, shard_program, unroll_loop, ActorId, BufferId, CompileError, FetchRole,
    InputPlacement, InputSource, Instr, MpmdProgram, TaskLabel, UnrollOptions,
};

use crate::optimizer::Optimizer;

/// Error raised by the training facade.
#[derive(Debug)]
pub enum CoreError {
    /// Compilation failed.
    Compile(CompileError),
    /// The runtime failed.
    Runtime(RuntimeError),
    /// Graph construction failed.
    Ir(IrError),
    /// Inconsistent user input.
    BadInput(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Compile(e) => write!(f, "{e}"),
            CoreError::Runtime(e) => write!(f, "{e}"),
            CoreError::Ir(e) => write!(f, "{e}"),
            CoreError::BadInput(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<CompileError> for CoreError {
    fn from(e: CompileError) -> Self {
        CoreError::Compile(e)
    }
}

impl From<RuntimeError> for CoreError {
    fn from(e: RuntimeError) -> Self {
        CoreError::Runtime(e)
    }
}

impl From<IrError> for CoreError {
    fn from(e: IrError) -> Self {
        CoreError::Ir(e)
    }
}

/// Intra-stage tensor parallelism for [`compile_train_step`]: the mesh
/// and axis every pipeline stage is sharded over.
///
/// With `degree() > 1` the compiled program is rewritten by
/// [`raxpp_taskgraph::shard_program`]: every pipeline actor `a` expands
/// into the rank block `a*t .. a*t+t-1`, matmul-bearing stage jaxprs are
/// partitioned over the last weight dimension, and real ring collectives
/// (`AllGather` / `AllReduce`) reassemble full values at stage
/// boundaries. The decomposition is **bitwise-deterministic**: a `tp = t`
/// run computes losses, gradients, parameters, and checkpoints that are
/// bit-for-bit identical to the `tp = 1` run (see
/// `docs/parallelism.md`).
#[derive(Debug, Clone)]
pub struct TpConfig {
    /// The device mesh each pipeline actor's stage is sharded over.
    pub mesh: Mesh,
    /// Logical-axis → mesh-axis assignment (Megatron-style row/column
    /// placement for planning with [`raxpp_mesh::plan_matmul`]).
    pub rules: AxisRules,
    /// Name of the mesh axis weights are sharded over.
    pub axis: String,
    /// Shard-lane concurrency override. `None` (the default) defers to
    /// the runtime's `RAXPP_TP_LANES` environment default (lanes on);
    /// `Some(0)` or `Some(1)` forces the serial ring fallback;
    /// `Some(n)` with `n >= 2` forces lane mode. Both modes are
    /// bitwise-identical; this is a performance/debugging switch, also
    /// flippable per step via [`Trainer::set_tp_lanes`].
    pub lanes: Option<usize>,
}

impl TpConfig {
    /// The canonical single-axis configuration: a 1-D `"model"` mesh of
    /// the given degree, with the `"hidden"` logical axis mapped onto it.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn model_parallel(degree: usize) -> TpConfig {
        assert!(degree > 0, "tensor-parallel degree must be positive");
        TpConfig {
            mesh: Mesh::new(&[("model", degree)]).expect("1-D mesh is always valid"),
            rules: AxisRules::new(&[("hidden", "model")]),
            axis: "model".to_string(),
            lanes: None,
        }
    }

    /// The mesh axis tensors are sharded over.
    pub fn mesh_axis(&self) -> &str {
        &self.axis
    }

    /// The tensor-parallel degree (size of the sharding axis; 1 when the
    /// axis is unknown to the mesh, which [`compile_train_step`] rejects).
    pub fn degree(&self) -> usize {
        self.mesh.axis_size(&self.axis).unwrap_or(0)
    }
}

/// Data parallelism for [`compile_train_step`]: replicate the compiled
/// pipeline (after any tensor-parallel sharding) into `replicas` copies
/// that each process a **disjoint `1/replicas` shard of the global
/// batch**, linked by gradient all-reduces over the DP axis.
///
/// The schedule handed to [`compile_train_step`] describes one replica;
/// the global batch is `replicas × schedule.n_mubatches()` microbatches,
/// with replica `r` consuming the contiguous slice
/// `r·N_local .. (r+1)·N_local` (see [`raxpp_sched::DpMap`]). Replica
/// gradients genuinely differ, and the DP all-reduce is a true sum
/// folded in pinned ascending-replica order.
///
/// Determinism is a **two-tier contract** (see `docs/determinism.md`):
/// at a *fixed* degree, runs are bitwise-reproducible through faults,
/// recovery, rebalances, checkpoint resume, and lane-mode flips;
/// *across* degrees, step-0 per-microbatch losses are bitwise equal and
/// later loss curves agree within documented fp32-summation bounds
/// (the gradient fold associates differently for different `d`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpConfig {
    /// Number of pipeline replicas (1 compiles the program unchanged).
    pub replicas: usize,
    /// ZeRO-1: shard optimizer state over the DP axis — each replica
    /// owns one **first-dim** slice of every moment tensor, computes its
    /// slice of the parameter update, and a second all-reduce folds the
    /// disjoint slices into the full parameter. The first dim is the
    /// axis tensor parallelism never splits, so this composes with any
    /// `tp` degree.
    pub zero1: bool,
}

impl DpConfig {
    /// Plain replicated data parallelism of the given degree.
    pub fn replicas(replicas: usize) -> DpConfig {
        DpConfig {
            replicas,
            zero1: false,
        }
    }

    /// Data parallelism with ZeRO-1 optimizer-state sharding.
    pub fn zero1(replicas: usize) -> DpConfig {
        DpConfig {
            replicas,
            zero1: true,
        }
    }
}

/// Options for [`compile_train_step`].
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Apply the loop-commuting rewrite for shared weights (§3.4).
    pub loop_commuting: bool,
    /// Also fetch the accumulated gradients every step (useful for
    /// validation; production steps fetch only losses).
    pub fetch_grads: bool,
    /// Intra-stage tensor parallelism: shard every pipeline stage over
    /// this mesh axis (PP×TP composition). `None` (the default) and
    /// degree-1 meshes compile the pure-pipeline program unchanged.
    pub tp: Option<TpConfig>,
    /// Data parallelism: replicate the (possibly TP-sharded) pipeline
    /// over a DP axis (PP×TP×DP composition). `None` (the default) and
    /// `replicas <= 1` compile the program unchanged.
    pub dp: Option<DpConfig>,
    /// Actor fabric for the launched runtime: in-process mpsc, Unix
    /// sockets, or TCP. `None` (the default) resolves from the
    /// `RAXPP_TRANSPORT` environment variable (mpsc when unset), so
    /// existing callers and whole test suites can be switched onto the
    /// wire without code changes.
    pub transport: Option<TransportKind>,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            loop_commuting: true,
            fetch_grads: false,
            tp: None,
            dp: None,
            transport: None,
        }
    }
}

/// Retry-with-backoff policy for [`Trainer::step_with_recovery`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum recovery attempts per step (0 = behave like
    /// [`Trainer::step`]).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on each subsequent one.
    pub backoff: Duration,
    /// Elastic degraded mode: after this many deaths of the *same*
    /// actor within one step's retry loop, stop respawning it and fold
    /// its stages onto the surviving actors ([`Trainer::rebalance`]).
    /// `None` disables rebalancing (every death is retried by respawn).
    pub rebalance_after: Option<u32>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: Duration::from_millis(10),
            rebalance_after: None,
        }
    }
}

/// Periodic on-disk checkpointing for
/// [`Trainer::step_with_recovery`]: every `every` successful steps the
/// full training state is saved as an atomic `ckpt-<step>` generation
/// under `dir` (see [`crate::checkpoint::CheckpointManager`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory checkpoint generations are written under.
    pub dir: PathBuf,
    /// Save every this many successful steps (minimum 1).
    pub every: u64,
    /// Newest generations to retain on disk (minimum 1).
    pub keep: usize,
}

impl CheckpointPolicy {
    /// A policy saving under `dir` every `every` steps, keeping the
    /// newest `keep` generations.
    pub fn new(dir: impl Into<PathBuf>, every: u64, keep: usize) -> CheckpointPolicy {
        CheckpointPolicy {
            dir: dir.into(),
            every: every.max(1),
            keep: keep.max(1),
        }
    }

    /// Builds a policy from the environment: `RAXPP_CKPT_DIR` (required
    /// — `None` when unset) and `RAXPP_CKPT_EVERY` (default 1). Three
    /// generations are kept.
    pub fn from_env() -> Option<CheckpointPolicy> {
        let dir = std::env::var_os("RAXPP_CKPT_DIR")?;
        let every = std::env::var("RAXPP_CKPT_EVERY")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1);
        Some(CheckpointPolicy::new(PathBuf::from(dir), every, 3))
    }

    fn manager(&self) -> crate::checkpoint::CheckpointManager {
        crate::checkpoint::CheckpointManager::new(&self.dir, self.keep)
    }
}

/// A compiled, launched training step bound to a live MPMD runtime.
#[derive(Debug)]
pub struct Trainer {
    runtime: Runtime,
    n_params: usize,
    n_outputs: usize,
    n_mubatches: usize,
    n_data_inputs: usize,
    param_shapes: Vec<Shape>,
    /// Optimizer-moment placements `(actor, buffer, shape)` — behind a
    /// `Mutex` because [`Trainer::rebalance`] remaps the actor ids when
    /// stages fold onto survivors.
    state_init: Mutex<Vec<(ActorId, BufferId, Shape)>>,
    /// Where each parameter's updated value is read back from —
    /// remapped on rebalance like `state_init`.
    param_read: Mutex<Vec<(ActorId, BufferId)>>,
    /// Composed compile-time-actor → current-host mapping (identity
    /// until the first rebalance); drives the `stages_per_actor_max`
    /// gauge.
    assign_total: Mutex<Vec<usize>>,
    fetch_grads: bool,
    /// Last-known-good training state (params, then optimizer moments),
    /// captured after `init` and after every successful
    /// `step_with_recovery` — the restore point for bitwise-identical
    /// retries.
    snapshot: Mutex<Option<Vec<Tensor>>>,
    /// Host-actor ↔ shard-actor arithmetic for the compiled
    /// tensor-parallel degree (degree 1 = identity). `state_init` and
    /// `param_read` stay in host-actor space; this map expands them to
    /// rank actors at placement time and picks rank 0 at read time (all
    /// ranks hold bitwise-identical replicas).
    tp: TpMap,
    /// Replica-actor arithmetic for the compiled data-parallel degree
    /// (1 replica = identity). Composes outside `tp`: raw actor =
    /// `dp.replica_actor(rep, tp.shard_actor(host, rank))`.
    dp: DpMap,
    /// Whether optimizer state is ZeRO-1-sharded over the DP axis —
    /// state placement/capture must then slice/assemble per replica.
    zero1: bool,
    /// The pipeline schedule this step was compiled for — kept so
    /// [`Trainer::bubble_report`] can simulate the same schedule.
    schedule: Schedule,
    /// Cross-step counters/gauges/histograms (see `docs/observability.md`
    /// for the catalog).
    metrics: Metrics,
    /// Successful `step_with_recovery` steps so far — the step number
    /// stamped into periodic checkpoints.
    steps_done: AtomicU64,
    /// Periodic on-disk checkpointing, seeded from the environment
    /// (`RAXPP_CKPT_DIR`/`RAXPP_CKPT_EVERY`) at compile time.
    ckpt: Mutex<Option<CheckpointPolicy>>,
    /// Cumulative [`TransportStats`] at the last metrics flush — the
    /// subtrahend for per-step `transport_*` counter deltas (socket
    /// transports only; stays zero on mpsc).
    wire_prev: Mutex<TransportStats>,
}

/// One step's results.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Per-microbatch loss values (output 0 of the traced function) —
    /// the concatenation semantics of `accumulate_grads`.
    pub losses: Vec<f32>,
    /// Mean loss across microbatches.
    pub mean_loss: f32,
    /// All per-microbatch outputs: `outputs[output][mubatch]`.
    pub outputs: Vec<Vec<Tensor>>,
    /// Accumulated gradients, when compiled with `fetch_grads`.
    pub grads: Option<Vec<Tensor>>,
    /// Runtime statistics.
    pub stats: StepStats,
}

/// The first-dim block `[start, start+len)` of `t` — host-side mirror
/// of `Prim::SliceFirst`, used to scatter full optimizer moments into
/// ZeRO-1 replica slices on restore. A first-dim slice is a contiguous
/// chunk of the row-major data, so this is a single copy.
fn slice_first(t: &Tensor, start: usize, len: usize) -> Tensor {
    let full = t.shape().dim(0);
    let inner = t.data().len() / full.max(1);
    let out = t.data()[start * inner..(start + len) * inner].to_vec();
    let mut dims = t.shape().dims().to_vec();
    dims[0] = len;
    Tensor::from_vec(Shape::new(dims), out).expect("slice_first shape is consistent")
}

/// Reassembles replica-ascending first-dim slices into the full tensor —
/// the capture-side inverse of [`slice_first`], used to read ZeRO-1
/// state back into full-shape (dp-degree-portable) checkpoints. With
/// row-major data and first-dim slices this is a plain concatenation.
fn assemble_first(slices: &[Tensor], full_shape: &Shape) -> Tensor {
    let mut out = Vec::with_capacity(full_shape.numel());
    for s in slices {
        out.extend_from_slice(s.data());
    }
    Tensor::from_vec(full_shape.clone(), out).expect("assembled slices tile the full shape")
}

fn next_buffer_id(program: &MpmdProgram) -> u32 {
    let mut max = 0;
    let mut bump = |b: BufferId| max = max.max(b.0 + 1);
    for p in &program.placements {
        bump(p.buf);
    }
    for f in &program.fetches {
        bump(f.buf);
    }
    for stream in &program.actors {
        for i in stream {
            match i {
                Instr::Run {
                    inputs, outputs, ..
                } => {
                    inputs.iter().copied().for_each(&mut bump);
                    outputs.iter().copied().for_each(&mut bump);
                }
                Instr::Send { buf, .. } | Instr::Free { buf } => bump(*buf),
                Instr::Recv { buf, src, .. } | Instr::Copy { dst: buf, src } => {
                    bump(*buf);
                    bump(*src);
                }
                Instr::Collective {
                    dst, src, wires, ..
                } => {
                    bump(*dst);
                    bump(*src);
                    wires.iter().copied().for_each(&mut bump);
                }
            }
        }
    }
    max
}

/// Compiles a traced training step into a launched [`Trainer`].
///
/// `jaxpr` is the yield-annotated microbatch function
/// `(params…, data…) → (loss, aux…)`; `n_params` its leading parameter
/// count. The gradient-accumulation loop follows `schedule`; `optimizer`
/// is applied on each parameter's owning actor after the loop, and
/// updated shared weights are re-broadcast to their replica actors.
///
/// # Errors
///
/// Returns [`CoreError`] for invalid models, schedules, or optimizer
/// graphs.
pub fn compile_train_step(
    jaxpr: &Jaxpr,
    n_params: usize,
    schedule: &Schedule,
    optimizer: Optimizer,
    opts: CompileOptions,
) -> Result<Trainer, CoreError> {
    let kind = opts.transport.unwrap_or_else(TransportKind::from_env);
    compile_train_step_on(jaxpr, n_params, schedule, optimizer, opts, |program| {
        Ok(Runtime::with_transport(program, kind))
    })
}

/// Compiles the identical training-step program as
/// [`compile_train_step`] **without** launching a runtime.
///
/// This is the worker side of a multi-process fleet: compilation is
/// deterministic, so a worker process that compiles the same spec gets
/// the bit-identical program the driver dispatches against and can
/// serve it via [`raxpp_runtime::serve_worker`] — programs never cross
/// the wire.
///
/// # Errors
///
/// Returns [`CoreError`] on malformed graphs or invalid options.
pub fn compile_worker_program(
    jaxpr: &Jaxpr,
    n_params: usize,
    schedule: &Schedule,
    optimizer: Optimizer,
    opts: CompileOptions,
) -> Result<MpmdProgram, CoreError> {
    Ok(compile_step(jaxpr, n_params, schedule, &optimizer, &opts)?.program)
}

/// Compiles a training step and launches it on a caller-built runtime.
///
/// The `launch` closure receives the compiled program and returns the
/// [`Runtime`] to train on — e.g. [`Runtime::with_process_fleet`] for a
/// multi-process socket fleet (`raxpp-launch`). [`compile_train_step`]
/// is this with `Runtime::with_transport`.
///
/// # Errors
///
/// Returns [`CoreError`] on compile failure or when `launch` fails.
pub fn compile_train_step_on(
    jaxpr: &Jaxpr,
    n_params: usize,
    schedule: &Schedule,
    optimizer: Optimizer,
    opts: CompileOptions,
    launch: impl FnOnce(MpmdProgram) -> std::io::Result<Runtime>,
) -> Result<Trainer, CoreError> {
    let c = compile_step(jaxpr, n_params, schedule, &optimizer, &opts)?;
    let runtime = launch(c.program)
        .map_err(|e| CoreError::BadInput(format!("launching the runtime fleet: {e}")))?;
    if let Some(lanes) = opts.tp.as_ref().and_then(|cfg| cfg.lanes) {
        runtime.set_tp_lanes(lanes > 1);
    }
    let n_actors = schedule.n_actors();
    Ok(Trainer {
        runtime,
        n_params,
        n_outputs: c.n_outputs,
        n_mubatches: c.n_mubatches,
        n_data_inputs: c.n_data_inputs,
        param_shapes: c.param_shapes,
        state_init: Mutex::new(c.state_init),
        param_read: Mutex::new(c.param_read),
        assign_total: Mutex::new((0..n_actors).collect()),
        fetch_grads: opts.fetch_grads,
        snapshot: Mutex::new(None),
        tp: c.tp,
        dp: c.dp,
        zero1: opts.dp.as_ref().is_some_and(|d| d.zero1 && d.replicas > 1),
        schedule: schedule.clone(),
        metrics: Metrics::new(),
        steps_done: AtomicU64::new(0),
        ckpt: Mutex::new(CheckpointPolicy::from_env()),
        wire_prev: Mutex::new(TransportStats::default()),
    })
}

/// Everything compilation produces before a runtime exists: the placed
/// MPMD program plus the metadata the [`Trainer`] facade needs.
struct CompiledStep {
    program: MpmdProgram,
    n_outputs: usize,
    n_data_inputs: usize,
    param_shapes: Vec<Shape>,
    state_init: Vec<(ActorId, BufferId, Shape)>,
    param_read: Vec<(ActorId, BufferId)>,
    tp: TpMap,
    dp: DpMap,
    n_mubatches: usize,
}

fn compile_step(
    jaxpr: &Jaxpr,
    n_params: usize,
    schedule: &Schedule,
    optimizer: &Optimizer,
    opts: &CompileOptions,
) -> Result<CompiledStep, CoreError> {
    let model = pipeline_model(jaxpr, n_params)?;
    let param_shapes = model.param_shapes();
    let n_outputs = jaxpr.outvars().len();
    let n_data_inputs = jaxpr.invars().len() - n_params;
    let mut compiled = unroll_loop(
        &model,
        schedule,
        UnrollOptions {
            loop_commuting: opts.loop_commuting,
        },
    )?;
    let program = &mut compiled.program;
    let mut next = next_buffer_id(program);
    let mut alloc = |shape: &Shape, buf_shapes: &mut HashMap<BufferId, Shape>| {
        let b = BufferId(next);
        next += 1;
        buf_shapes.insert(b, shape.clone());
        b
    };
    let mut buf_shapes = HashMap::new();

    // Append optimizer updates on each parameter's gradient owner, then
    // propagate updated shared weights to their replicas.
    let mut state_init = Vec::new();
    let mut param_read = Vec::with_capacity(n_params);
    for (p, shape) in param_shapes.iter().enumerate().take(n_params) {
        let (grad_buf, owner) = compiled.grads[p];
        let update = optimizer.update_jaxpr(shape)?;
        let jid = program.add_jaxpr(update);
        let pbuf = compiled.param_buffers[&(p, owner)];
        let states: Vec<BufferId> = (0..optimizer.n_state_slots())
            .map(|slot| {
                let b = alloc(shape, &mut buf_shapes);
                program.placements.push(InputPlacement {
                    buf: b,
                    actor: owner,
                    shape: shape.clone(),
                    source: InputSource::State { param: p, slot },
                });
                state_init.push((owner, b, shape.clone()));
                b
            })
            .collect();
        let mut inputs = vec![pbuf, grad_buf];
        inputs.extend(&states);
        let mut outputs = vec![pbuf];
        outputs.extend(&states);
        program.actors[owner].push(Instr::Run {
            jaxpr: jid,
            inputs,
            outputs,
            label: TaskLabel::Update { param: p },
        });
        for &other in &compiled.param_actors[p] {
            if other == owner {
                continue;
            }
            let other_buf = compiled.param_buffers[&(p, other)];
            program.actors[owner].push(Instr::Send {
                buf: pbuf,
                to: other,
            });
            program.actors[other].push(Instr::Recv {
                buf: other_buf,
                src: pbuf,
                from: owner,
                shape: shape.clone(),
            });
        }
        param_read.push((owner, pbuf));
    }
    if !opts.fetch_grads {
        program
            .fetches
            .retain(|f| !matches!(f.role, FetchRole::Grad(_)));
    }
    // Tensor-parallel sharding: rewrite the finished host-actor program
    // (gradient loop + optimizer + re-broadcasts) into `tp_degree`
    // shard streams per pipeline actor. Running the pass after the
    // optimizer append means parameter updates are replicated across
    // ranks too, preserving the replicated-buffer invariant end to end.
    let tp = match &opts.tp {
        Some(cfg) => {
            let degree = cfg.mesh.axis_size(&cfg.axis).ok_or_else(|| {
                CoreError::BadInput(format!(
                    "tensor-parallel axis {:?} is not an axis of the mesh",
                    cfg.axis
                ))
            })?;
            if degree > 1 {
                *program = shard_program(program, &cfg.mesh, &cfg.axis)
                    .map_err(|e| CoreError::BadInput(format!("tensor-parallel lowering: {e}")))?;
            }
            TpMap::new(degree)
        }
        None => TpMap::new(1),
    };
    // Data-parallel replication: clone the (possibly TP-sharded)
    // pipeline into `replicas` copies that each consume a disjoint
    // slice of the global batch, linked by DP-axis gradient all-reduce
    // sums, optionally sharding optimizer state (ZeRO-1, first-dim —
    // composes with any tp degree).
    let dp = match &opts.dp {
        Some(cfg) if cfg.replicas > 1 => {
            let base = program.n_actors();
            let mut build = |param: usize, start: usize, len: usize| {
                optimizer
                    .sharded_update_jaxpr(&param_shapes[param], start, len)
                    .map_err(|e| e.to_string())
            };
            let zero1: Option<&mut dyn FnMut(usize, usize, usize) -> Result<_, String>> =
                if cfg.zero1 { Some(&mut build) } else { None };
            *program = replicate_program(program, cfg.replicas, zero1)
                .map_err(|e| CoreError::BadInput(format!("data-parallel lowering: {e}")))?;
            DpMap::new(cfg.replicas, base)
        }
        _ => DpMap::new(1, program.n_actors()),
    };
    insert_frees(program);
    if tp.degree() > 1 || dp.replicas() > 1 {
        // Coalesce back-to-back collectives into contiguous buckets
        // (hoisting the frees insert_frees interleaved) so the lane
        // runtime's panel streaming sees every collective a Run's
        // outputs feed directly behind that Run.
        bucket_collectives(program);
    }
    check_send_recv_order(program).map_err(|(a, b)| {
        CoreError::BadInput(format!(
            "internal error: send/recv order broken between {a}/{b}"
        ))
    })?;
    // Full static verification (shape-level abstract execution) in debug
    // builds; release builds trust the pass structure.
    #[cfg(debug_assertions)]
    raxpp_taskgraph::verify_program(program)
        .map_err(|e| CoreError::BadInput(format!("internal error: {e}")))?;

    // The schedule describes one replica; the step consumes the global
    // batch of `replicas × n_mubatches()` microbatches, sharded
    // contiguously across replicas by `replicate_program`.
    let n_mubatches = dp.global_mubatches(schedule.n_mubatches());
    Ok(CompiledStep {
        program: compiled.program,
        n_outputs,
        n_data_inputs,
        param_shapes,
        state_init,
        param_read,
        tp,
        dp,
        n_mubatches,
    })
}

impl Trainer {
    /// Places initial parameters and zeroed optimizer state on the
    /// actors. Must be called once before the first [`Trainer::step`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on shape mismatches or runtime failure.
    pub fn init(&self, params: &[Tensor]) -> Result<(), CoreError> {
        if params.len() != self.n_params {
            return Err(CoreError::BadInput(format!(
                "expected {} parameters, got {}",
                self.n_params,
                params.len()
            )));
        }
        self.runtime.place_params(params)?;
        let mut zeros: Vec<(usize, BufferId, Tensor)> = Vec::new();
        for &(a, b, ref s) in self.state_init.lock().unwrap().iter() {
            for rep in 0..self.dp.replicas() {
                let z = Tensor::zeros(self.state_shape_for(s, rep));
                for r in 0..self.tp.degree() {
                    zeros.push((self.raw_actor(rep, a, r), b, z.clone()));
                }
            }
        }
        self.runtime.place_buffers(&zeros)?;
        *self.snapshot.lock().unwrap() = Some(self.capture_state()?);
        self.update_fleet_gauges();
        Ok(())
    }

    /// Refreshes the `actors_alive` / `stages_per_actor_max` gauges
    /// from the runtime and the composed fold assignment.
    fn update_fleet_gauges(&self) {
        self.metrics
            .set_gauge("actors_alive", self.runtime.alive_actors() as f64);
        let assign = self.assign_total.lock().unwrap();
        let mut per_host: HashMap<usize, usize> = HashMap::new();
        for &a in &self.schedule.stage_actor() {
            *per_host.entry(assign[a]).or_insert(0) += 1;
        }
        let max = per_host.values().copied().max().unwrap_or(0);
        self.metrics.set_gauge("stages_per_actor_max", max as f64);
    }

    /// The raw runtime actor of `(replica, host, tp rank)` — the DP
    /// block offset composed outside the TP rank expansion.
    fn raw_actor(&self, rep: usize, host: ActorId, rank: usize) -> usize {
        self.dp.replica_actor(rep, self.tp.shard_actor(host, rank))
    }

    /// The shape replica `rep` holds for an optimizer-state slot whose
    /// full shape is `s`: the ZeRO-1 first-dim slice for DP-treated
    /// parameters, the full shape otherwise.
    fn state_shape_for(&self, s: &Shape, rep: usize) -> Shape {
        if self.zero1 && dp_treated(s, self.dp.replicas()) {
            let (_, len) = dp_split(s.dim(0), self.dp.replicas(), rep);
            let mut dims = s.dims().to_vec();
            dims[0] = len;
            Shape::new(dims)
        } else {
            s.clone()
        }
    }

    /// Reads the full training state (parameters, then optimizer
    /// moments) back from the actors — O(1) `Arc` handle moves per
    /// tensor, not data copies. ZeRO-1 state slices are read from every
    /// replica and reassembled, so captured state (and hence
    /// checkpoints) is always full-shape and portable across DP
    /// degrees.
    fn capture_state(&self) -> Result<Vec<Tensor>, CoreError> {
        let mut tensors = self.params()?;
        for &(a, b, ref s) in self.state_init.lock().unwrap().iter() {
            if self.zero1 && dp_treated(s, self.dp.replicas()) {
                let slices: Vec<Tensor> = (0..self.dp.replicas())
                    .map(|rep| self.runtime.read_buffer(self.raw_actor(rep, a, 0), b))
                    .collect::<Result<_, _>>()?;
                tensors.push(assemble_first(&slices, s));
            } else {
                tensors.push(self.runtime.read_buffer(self.raw_actor(0, a, 0), b)?);
            }
        }
        Ok(tensors)
    }

    /// Re-places a previously captured state on every actor (parameters
    /// to all of their replicas, moments to their owners in every DP
    /// replica — sliced per replica under ZeRO-1).
    fn restore_state(&self, tensors: &[Tensor]) -> Result<(), CoreError> {
        let (params, states) = tensors.split_at(self.n_params);
        self.runtime.place_params(params)?;
        let mut items: Vec<(usize, BufferId, Tensor)> = Vec::new();
        for (&(a, b, ref s), t) in self.state_init.lock().unwrap().iter().zip(states) {
            for rep in 0..self.dp.replicas() {
                let tt = if self.zero1 && dp_treated(s, self.dp.replicas()) {
                    let (start, len) = dp_split(s.dim(0), self.dp.replicas(), rep);
                    slice_first(t, start, len)
                } else {
                    t.clone()
                };
                for r in 0..self.tp.degree() {
                    items.push((self.raw_actor(rep, a, r), b, tt.clone()));
                }
            }
        }
        self.runtime.place_buffers(&items)?;
        Ok(())
    }

    /// Runs one training step over `data[input][mubatch]`, returning the
    /// per-microbatch losses (and optionally gradients).
    ///
    /// Under data parallelism `mubatch` indexes the **global** batch of
    /// [`Trainer::n_mubatches`] microbatches; replica `r` consumes the
    /// contiguous slice `r·N/d .. (r+1)·N/d`, and losses/outputs come
    /// back in global-microbatch order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on bad inputs or runtime failure.
    pub fn step(&self, data: &[Vec<Tensor>]) -> Result<StepResult, CoreError> {
        if data.len() != self.n_data_inputs {
            return Err(CoreError::BadInput(format!(
                "expected {} data inputs, got {}",
                self.n_data_inputs,
                data.len()
            )));
        }
        let out = match self.runtime.step(data) {
            Ok(o) => o,
            Err(e) => {
                self.metrics.inc("step_failures_total", 1);
                return Err(e.into());
            }
        };
        self.metrics.inc("steps_total", 1);
        self.metrics
            .observe("step_time_s", out.stats.wall.as_secs_f64());
        let alloc = out.stats.alloc_stats();
        self.metrics.inc("alloc_allocated_total", alloc.allocated);
        self.metrics.inc("alloc_reused_total", alloc.reused);
        self.metrics.inc("alloc_freed_total", alloc.freed);
        let touched = alloc.allocated + alloc.reused;
        if touched > 0 {
            self.metrics
                .set_gauge("alloc_reuse_rate", alloc.reused as f64 / touched as f64);
        }
        if self.runtime.transport_kind() != TransportKind::Mpsc {
            // Wire counters are cumulative on the transport; publish
            // per-step deltas so they compose with counter semantics.
            let now = self.runtime.transport_stats();
            let mut prev = self.wire_prev.lock().unwrap();
            self.metrics.inc(
                "transport_bytes_tx",
                now.bytes_tx.saturating_sub(prev.bytes_tx),
            );
            self.metrics.inc(
                "transport_bytes_rx",
                now.bytes_rx.saturating_sub(prev.bytes_rx),
            );
            self.metrics.inc(
                "reconnects_total",
                now.reconnects.saturating_sub(prev.reconnects),
            );
            self.metrics.inc(
                "heartbeat_misses_total",
                now.heartbeat_misses.saturating_sub(prev.heartbeat_misses),
            );
            *prev = now;
        }
        if self.tp.degree() > 1 {
            let collectives: u64 = out
                .stats
                .profiles
                .iter()
                .filter_map(|p| p.get("collective"))
                .map(|(_, count)| count as u64)
                .sum();
            self.metrics.inc("tp_collectives_total", collectives);
            let reduced: u64 = out.stats.profiles.iter().map(|p| p.bytes_reduced()).sum();
            self.metrics.inc("tp_bytes_reduced", reduced);
            let wire: u64 = out.stats.profiles.iter().map(|p| p.bytes_wire()).sum();
            self.metrics.inc("tp_bytes_wire", wire);
            let wait_us: u64 = out
                .stats
                .profiles
                .iter()
                .filter_map(|p| p.get("collective_wait"))
                .map(|(dur, _)| dur.as_micros() as u64)
                .sum();
            self.metrics.inc("tp_collective_wait_us", wait_us);
            // A contribution published early overlaps its transfer to
            // all t-1 peers, so the overlapped share of the wire volume
            // is bytes_overlap × (t-1) out of bytes_wire.
            let overlap: u64 = out.stats.profiles.iter().map(|p| p.bytes_overlap()).sum();
            if wire > 0 {
                let t = self.tp.degree() as u64;
                self.metrics
                    .set_gauge("tp_overlap_ratio", (overlap * (t - 1)) as f64 / wire as f64);
            }
        }
        if self.dp.replicas() > 1 {
            let collectives: u64 = out
                .stats
                .profiles
                .iter()
                .filter_map(|p| p.get("dp_collective"))
                .map(|(_, count)| count as u64)
                .sum();
            self.metrics.inc("dp_collectives_total", collectives);
            let wire: u64 = out.stats.profiles.iter().map(|p| p.dp_bytes_wire()).sum();
            self.metrics.inc("dp_bytes_wire", wire);
            let wait_us: u64 = out
                .stats
                .profiles
                .iter()
                .filter_map(|p| p.get("dp_collective_wait"))
                .map(|(dur, _)| dur.as_micros() as u64)
                .sum();
            self.metrics.inc("dp_collective_wait_us", wait_us);
            // Each replica runs its compiled (per-replica) schedule:
            // the global batch divided by the DP degree.
            self.metrics.set_gauge(
                "dp_microbatches_per_replica",
                (self.n_mubatches / self.dp.replicas()) as f64,
            );
        }
        if self.tp.degree() == 1 && self.dp.replicas() == 1 {
            if let Some(trace) = &out.trace {
                // Bubble accounting maps trace actors 1:1 onto pipeline
                // ranks; under tensor or data parallelism each rank owns
                // multiple actor timelines, so the report is only
                // computed for pure PP.
                let report = crate::observe::bubble_report(trace, &self.schedule);
                self.metrics
                    .set_gauge("bubble_fraction_measured", report.measured_bubble);
            }
        }
        let mut outputs: Vec<Vec<Option<Tensor>>> =
            vec![vec![None; self.n_mubatches]; self.n_outputs];
        let mut grads: Vec<Option<Tensor>> = vec![None; self.n_params];
        for (f, t) in out.fetched {
            match f.role {
                FetchRole::Output { output, mubatch } => outputs[output][mubatch] = Some(t),
                FetchRole::Grad(p) => grads[p] = Some(t),
            }
        }
        let outputs: Vec<Vec<Tensor>> = outputs
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|t| t.expect("missing output"))
                    .collect()
            })
            .collect();
        let losses: Vec<f32> = outputs[0]
            .iter()
            .map(|t| t.item().expect("loss must be scalar"))
            .collect();
        let mean_loss = losses.iter().sum::<f32>() / losses.len().max(1) as f32;
        let grads = if self.fetch_grads {
            Some(
                grads
                    .into_iter()
                    .map(|g| g.expect("missing grad"))
                    .collect(),
            )
        } else {
            None
        };
        Ok(StepResult {
            losses,
            mean_loss,
            outputs,
            grads,
            stats: out.stats,
        })
    }

    /// Runs one training step with automatic failure recovery: on an
    /// actor death, task error, or timeout, the runtime is recovered
    /// ([`Runtime::recover`]: dead actors respawned, channels rewired),
    /// the last-known-good state (captured after [`Trainer::init`] and
    /// after every successful recovered step) is restored on all actors,
    /// and the step is retried after an exponential backoff.
    ///
    /// Because the restore point is the exact post-previous-step state
    /// and the retried step re-places its data inputs, a recovered run
    /// is **bitwise identical** to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns the last [`CoreError`] once `policy.max_retries` is
    /// exhausted, and immediately for non-recoverable errors (bad
    /// inputs).
    pub fn step_with_recovery(
        &self,
        data: &[Vec<Tensor>],
        policy: RetryPolicy,
    ) -> Result<StepResult, CoreError> {
        let mut attempt = 0u32;
        let mut deaths: HashMap<usize, u32> = HashMap::new();
        loop {
            match self.step(data) {
                Ok(r) => {
                    let state = self.capture_state()?;
                    *self.snapshot.lock().unwrap() = Some(state.clone());
                    self.after_successful_step(&state)?;
                    return Ok(r);
                }
                Err(CoreError::Runtime(e))
                    if e.is_recoverable() && attempt < policy.max_retries =>
                {
                    if self.maybe_rebalance(&e, policy, &mut deaths)?.is_none() {
                        self.recover_and_restore(attempt, policy)?;
                    }
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// The rebalance rung of the recovery ladder: when `policy` enables
    /// elastic mode and `e` is the `rebalance_after`-th death of the
    /// same actor within this step's retry loop (and at least one other
    /// actor survives), folds that actor away instead of respawning it.
    /// Returns the report when a rebalance happened.
    fn maybe_rebalance(
        &self,
        e: &RuntimeError,
        policy: RetryPolicy,
        deaths: &mut HashMap<usize, u32>,
    ) -> Result<Option<RebalanceReport>, CoreError> {
        let (RuntimeError::ActorDied { actor }, Some(after)) = (e, policy.rebalance_after) else {
            return Ok(None);
        };
        let count = deaths.entry(*actor).or_insert(0);
        *count += 1;
        // A fold retires the dead actor's whole host group in every
        // replica (t × R raw actors); without at least one more group's
        // worth of survivors there is nothing to fold onto.
        let group = self.tp.degree() * self.dp.replicas();
        if *count < after.max(1) || self.runtime.alive_actors() <= group {
            return Ok(None);
        }
        self.rebalance(&[*actor]).map(Some)
    }

    /// Bookkeeping after a successful recovered step: bump the step
    /// counter and write a periodic checkpoint when one is due.
    fn after_successful_step(&self, state: &[Tensor]) -> Result<(), CoreError> {
        let step = self.steps_done.fetch_add(1, Ordering::SeqCst) + 1;
        let ckpt = self.ckpt.lock().unwrap();
        if let Some(p) = ckpt.as_ref() {
            if step.is_multiple_of(p.every) {
                p.manager()
                    .save(step, state)
                    .map_err(|e| CoreError::BadInput(format!("checkpoint save failed: {e}")))?;
                self.metrics.inc("checkpoints_total", 1);
            }
        }
        Ok(())
    }

    /// Permanently folds the given actors' stages onto the survivors
    /// and resumes from the last-known-good snapshot: the runtime's
    /// program is re-placed ([`raxpp_runtime::Runtime::rebalance`]),
    /// dead survivors are respawned, the trainer's placement maps are
    /// remapped, and the snapshot is restored fleet-wide — so the next
    /// step computes **bitwise-identical** results on fewer actors.
    ///
    /// Usually invoked automatically by the recovery ladder of
    /// [`Trainer::step_with_recovery`] (see
    /// [`RetryPolicy::rebalance_after`]); callable directly for planned
    /// shrinks.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Runtime`] when no survivor remains or the
    /// program cannot be re-placed (the fleet is left as it was).
    ///
    /// Under tensor and/or data parallelism a dead actor's **whole host
    /// group** folds away uniformly — all `t` ranks of its host, in
    /// every DP replica — so collective groups remap rank-preservingly
    /// onto the survivors' groups and the shrunken fleet still computes
    /// bitwise-identical results.
    pub fn rebalance(&self, dead: &[usize]) -> Result<RebalanceReport, CoreError> {
        let report = self.runtime.rebalance(dead)?;
        // Respawn any survivor that died in the same incident before
        // re-placing state on the fleet.
        self.runtime.recover()?;
        {
            // `report.assign` is in raw actor space; the trainer's maps
            // are in host space. Host-level uniform folds guarantee
            // `assign[host*t] = new_host*t` (replica 0, rank 0), which
            // recovers the host mapping for any tp/dp degree.
            let t = self.tp.degree();
            let mut state_init = self.state_init.lock().unwrap();
            for e in state_init.iter_mut() {
                e.0 = report.assign[e.0 * t] / t;
            }
            let mut param_read = self.param_read.lock().unwrap();
            for e in param_read.iter_mut() {
                e.0 = report.assign[e.0 * t] / t;
            }
            let mut assign_total = self.assign_total.lock().unwrap();
            for host in assign_total.iter_mut() {
                *host = report.assign[*host * t] / t;
            }
        }
        let snapshot = self.snapshot.lock().unwrap();
        if let Some(state) = snapshot.as_ref() {
            self.restore_state(state)?;
        }
        drop(snapshot);
        self.metrics.inc("rebalances_total", 1);
        self.update_fleet_gauges();
        Ok(report)
    }

    /// Resumes training state from the newest valid checkpoint
    /// generation under `dir` (corrupt generations are skipped via
    /// their checksums). Returns the resumed step number, or `None`
    /// when the directory holds no valid generation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for I/O failures or a checkpoint
    /// whose tensors do not match this trainer.
    pub fn resume_from_dir(&self, dir: impl AsRef<Path>) -> Result<Option<u64>, CoreError> {
        let mgr = crate::checkpoint::CheckpointManager::new(dir.as_ref(), usize::MAX);
        let Some((step, tensors)) = mgr
            .latest_valid()
            .map_err(|e| CoreError::BadInput(format!("checkpoint scan failed: {e}")))?
        else {
            return Ok(None);
        };
        self.adopt_state(tensors)?;
        self.steps_done.store(step, Ordering::SeqCst);
        Ok(Some(step))
    }

    /// Successful `step_with_recovery` steps so far (the step number
    /// stamped into periodic checkpoints).
    pub fn steps_done(&self) -> u64 {
        self.steps_done.load(Ordering::SeqCst)
    }

    /// Installs (or clears) the periodic checkpoint policy. The policy
    /// is otherwise seeded from `RAXPP_CKPT_DIR`/`RAXPP_CKPT_EVERY` at
    /// compile time.
    pub fn set_checkpoint_policy(&self, policy: Option<CheckpointPolicy>) {
        *self.ckpt.lock().unwrap() = policy;
    }

    /// One recovery round of the retry loop: backoff, respawn dead
    /// actors, restore the last-known-good snapshot fleet-wide.
    fn recover_and_restore(&self, attempt: u32, policy: RetryPolicy) -> Result<(), CoreError> {
        let backoff = policy.backoff * 2u32.saturating_pow(attempt);
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        let report = self.runtime.recover()?;
        self.metrics.inc("retries_total", 1);
        self.metrics.inc("recoveries_total", 1);
        self.metrics
            .inc("respawned_actors_total", report.respawned.len() as u64);
        let snapshot = self.snapshot.lock().unwrap();
        let state = snapshot.as_ref().ok_or_else(|| {
            CoreError::BadInput("cannot recover: no snapshot (init was never called)".into())
        })?;
        self.restore_state(state)?;
        Ok(())
    }

    /// Runs one step with per-instruction tracing forced on, returning
    /// the results together with the step's [`StepTrace`] (the previous
    /// tracing setting is restored afterwards).
    ///
    /// Tracing only observes execution, so a traced step computes
    /// bitwise-identical results to an untraced one. Export the trace
    /// with [`StepTrace::chrome_trace_json`] or summarize it with
    /// [`Trainer::bubble_report`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] on bad inputs or runtime failure; the
    /// failed step's partial trace stays retrievable via
    /// `runtime().take_step_trace()`.
    pub fn step_traced(&self, data: &[Vec<Tensor>]) -> Result<(StepResult, StepTrace), CoreError> {
        let was = self.runtime.tracing_enabled();
        self.runtime.set_tracing(true);
        let result = self.step(data);
        self.runtime.set_tracing(was);
        let r = result?;
        let trace = self
            .runtime
            .take_step_trace()
            .ok_or_else(|| CoreError::BadInput("traced step recorded no trace".into()))?;
        Ok((r, trace))
    }

    /// [`Trainer::step_with_recovery`] with tracing forced on: the
    /// returned [`StepTrace`] is the *successful* attempt's timeline,
    /// with the abort/death events of every failed attempt and a
    /// `"retry"` marker per recovery round prepended to its event list —
    /// the full post-mortem of what the step survived.
    ///
    /// # Errors
    ///
    /// Returns the last [`CoreError`] once `policy.max_retries` is
    /// exhausted, and immediately for non-recoverable errors.
    pub fn step_traced_with_recovery(
        &self,
        data: &[Vec<Tensor>],
        policy: RetryPolicy,
    ) -> Result<(StepResult, StepTrace), CoreError> {
        let was = self.runtime.tracing_enabled();
        self.runtime.set_tracing(true);
        let mut attempt = 0u32;
        let mut deaths: HashMap<usize, u32> = HashMap::new();
        let mut prior_events: Vec<StepEvent> = Vec::new();
        let result = loop {
            match self.step(data) {
                Ok(r) => {
                    let captured = self.capture_state();
                    let mut trace = self.runtime.take_step_trace().unwrap_or_default();
                    match captured {
                        Ok(state) => {
                            *self.snapshot.lock().unwrap() = Some(state.clone());
                            if let Err(e) = self.after_successful_step(&state) {
                                break Err(e);
                            }
                        }
                        Err(e) => break Err(e),
                    }
                    if !prior_events.is_empty() {
                        prior_events.append(&mut trace.events);
                        trace.events = std::mem::take(&mut prior_events);
                    }
                    break Ok((r, trace));
                }
                Err(CoreError::Runtime(e))
                    if e.is_recoverable() && attempt < policy.max_retries =>
                {
                    // Keep the failed attempt's abort/death events; its
                    // spans are droppable (the successful attempt rewrites
                    // the same instruction timeline).
                    if let Some(t) = self.runtime.take_step_trace() {
                        prior_events.extend(t.events);
                    }
                    prior_events.push(StepEvent {
                        ts_ns: self.runtime.now_ns(),
                        actor: None,
                        kind: "retry".to_string(),
                        detail: format!("attempt {} after: {e}", attempt + 1),
                    });
                    match self.maybe_rebalance(&e, policy, &mut deaths) {
                        Ok(Some(report)) => prior_events.push(StepEvent {
                            ts_ns: self.runtime.now_ns(),
                            actor: None,
                            kind: "rebalanced".to_string(),
                            detail: format!(
                                "retired {:?}, migrated {} buffers",
                                report.retired, report.migrated_buffers
                            ),
                        }),
                        Ok(None) => {
                            if let Err(e) = self.recover_and_restore(attempt, policy) {
                                break Err(e);
                            }
                        }
                        Err(e) => break Err(e),
                    }
                    attempt += 1;
                }
                Err(e) => break Err(e),
            }
        };
        self.runtime.set_tracing(was);
        result
    }

    /// Measured vs simulator-predicted bubble accounting for a trace
    /// produced by this trainer (see [`crate::bubble_report`]): per
    /// pipeline rank, compute vs send vs recv-wait time from the spans,
    /// diffed against [`raxpp_sched::simulate`] on the compiled schedule
    /// under a cost model derived from the same trace.
    pub fn bubble_report(&self, trace: &StepTrace) -> crate::BubbleReport {
        crate::observe::bubble_report(trace, &self.schedule)
    }

    /// The cross-step metrics registry: step timings, allocator
    /// counters, failure/retry counts, measured bubble fraction (see
    /// `docs/observability.md` for the catalog).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The pipeline schedule this trainer was compiled for.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Reads the current (updated) parameter values back from the actors.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Runtime`] on runtime failure.
    pub fn params(&self) -> Result<Vec<Tensor>, CoreError> {
        self.param_read
            .lock()
            .unwrap()
            .iter()
            .map(|&(a, b)| {
                self.runtime
                    .read_buffer(self.raw_actor(0, a, 0), b)
                    .map_err(CoreError::from)
            })
            .collect()
    }

    /// Number of microbatches per step — the **global** batch size in
    /// microbatches. Under data parallelism this is
    /// `dp_degree() × schedule.n_mubatches()`; each replica executes
    /// `schedule.n_mubatches()` of them.
    pub fn n_mubatches(&self) -> usize {
        self.n_mubatches
    }

    /// The compiled tensor-parallel degree (1 for pure pipeline
    /// parallelism).
    pub fn tp_degree(&self) -> usize {
        self.tp.degree()
    }

    /// The compiled data-parallel degree (1 for an unreplicated
    /// pipeline).
    pub fn dp_degree(&self) -> usize {
        self.dp.replicas()
    }

    /// Whether optimizer state is ZeRO-1-sharded over the DP axis.
    pub fn zero1(&self) -> bool {
        self.zero1
    }

    /// Switches tensor-parallel collectives between the shard-lane
    /// rendezvous (`true`, the default) and the serial ring fallback
    /// (`false`). Both modes are bitwise-identical; the switch latches
    /// at the next step's dispatch, so a step never mixes modes. No-op
    /// for tp = 1 programs.
    pub fn set_tp_lanes(&self, on: bool) {
        self.runtime.set_tp_lanes(on);
    }

    /// Shapes of the model parameters.
    pub fn param_shapes(&self) -> &[Shape] {
        &self.param_shapes
    }

    /// The underlying runtime (for program inspection in tests).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Saves the full training state (parameters, then optimizer
    /// moments) as a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Runtime`] if state cannot be read back, or
    /// [`CoreError::BadInput`] wrapping I/O failures.
    pub fn save_checkpoint(&self, w: impl std::io::Write) -> Result<(), CoreError> {
        let tensors = self.capture_state()?;
        crate::checkpoint::save_tensors(w, &tensors)
            .map_err(|e| CoreError::BadInput(format!("checkpoint write failed: {e}")))
    }

    /// Restores training state from a checkpoint produced by
    /// [`Trainer::save_checkpoint`] on an identically-compiled trainer.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for malformed or mismatched
    /// checkpoints, or a runtime error.
    pub fn restore_checkpoint(&self, r: impl std::io::Read) -> Result<(), CoreError> {
        let tensors = crate::checkpoint::load_tensors(r)
            .map_err(|e| CoreError::BadInput(format!("checkpoint read failed: {e}")))?;
        self.adopt_state(tensors)
    }

    /// Validates a freshly loaded training state against the trainer's
    /// shapes, re-places it fleet-wide, and makes it the new recovery
    /// restore point.
    fn adopt_state(&self, tensors: Vec<Tensor>) -> Result<(), CoreError> {
        let n_states = self.state_init.lock().unwrap().len();
        if tensors.len() != self.n_params + n_states {
            return Err(CoreError::BadInput(format!(
                "checkpoint has {} tensors, trainer expects {}",
                tensors.len(),
                self.n_params + n_states
            )));
        }
        let (_, states) = tensors.split_at(self.n_params);
        for ((_, _, shape), t) in self.state_init.lock().unwrap().iter().zip(states) {
            if t.shape() != shape {
                return Err(CoreError::BadInput(format!(
                    "optimizer state shape mismatch: {} vs {}",
                    t.shape(),
                    shape
                )));
            }
        }
        self.restore_state(&tensors)?;
        // The checkpoint becomes the new recovery restore point.
        *self.snapshot.lock().unwrap() = Some(tensors);
        Ok(())
    }
}

/// The paper's `RemoteMesh` front door: a set of actors, each standing
/// for an SPMD group of devices.
///
/// **Substitution note:** on real hardware each actor is a Ray worker
/// driving `spmd_shape` GPUs through XLA; here each actor is a thread
/// executing the logical (unsharded) computation with the CPU
/// interpreter, while `raxpp-mesh`/`raxpp-simcluster` model the intra-
/// actor SPMD behaviour (local shapes, collectives, timing) analytically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteMesh {
    n_actors: usize,
    spmd_shape: (usize, usize),
}

impl RemoteMesh {
    /// Allocates a mesh of `n_actors` actors, each notionally an SPMD
    /// mesh of `spmd_shape` devices.
    pub fn new(n_actors: usize, spmd_shape: (usize, usize)) -> RemoteMesh {
        RemoteMesh {
            n_actors,
            spmd_shape,
        }
    }

    /// Number of actors.
    pub fn n_actors(&self) -> usize {
        self.n_actors
    }

    /// SPMD devices per actor.
    pub fn spmd_shape(&self) -> (usize, usize) {
        self.spmd_shape
    }

    /// Compiles and launches a training step on this mesh —
    /// the `mesh.distributed(train_step)` of Figure 4.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] when the schedule needs a
    /// different actor count, plus any compilation error.
    pub fn distributed(
        &self,
        jaxpr: &Jaxpr,
        n_params: usize,
        schedule: &Schedule,
        optimizer: Optimizer,
        opts: CompileOptions,
    ) -> Result<Trainer, CoreError> {
        if schedule.n_actors() != self.n_actors {
            return Err(CoreError::BadInput(format!(
                "schedule wants {} actors but the mesh has {}",
                schedule.n_actors(),
                self.n_actors
            )));
        }
        compile_train_step(jaxpr, n_params, schedule, optimizer, opts)
    }
}
