//! Bubble accounting: measured per-stage idle time from a [`StepTrace`]
//! diffed against the `raxpp-sched` simulator's prediction for the same
//! schedule — the loop-closer between the analytical model and the real
//! runtime (the paper's Fig. 8-style analysis).
//!
//! The measured side reads the trace's instruction spans: compute time
//! is everything that runs a task graph (`fwd`, `bwd`, `bwdw`,
//! `accum_grad`, `ct_sum`, `grad_reduce`, `update`), communication is
//! `send`, and a `recv` span is almost entirely *waiting* for upstream
//! data — the executable form of the pipeline bubble. The predicted side
//! simulates the same schedule under a [`UniformCost`] model whose
//! `fwd`/`bwd`/`wgrad` durations are the medians measured in this very
//! trace, so the two sides are directly comparable.

use std::fmt;

use raxpp_runtime::StepTrace;
use raxpp_sched::{simulate, Schedule, UniformCost};

/// Span kinds that count as compute when reading a trace.
const COMPUTE_KINDS: [&str; 7] = [
    "fwd",
    "bwd",
    "bwdw",
    "accum_grad",
    "ct_sum",
    "grad_reduce",
    "update",
];

/// One actor's time breakdown for a step.
#[derive(Debug, Clone, PartialEq)]
pub struct StageReport {
    /// The actor (pipeline rank).
    pub actor: usize,
    /// Seconds spent executing task graphs.
    pub compute_s: f64,
    /// Seconds spent in `send` instructions.
    pub comm_s: f64,
    /// Seconds spent blocked in `recv` instructions (waiting for
    /// upstream data — the dominant component of measured idle).
    pub wait_s: f64,
    /// Measured idle fraction: share of the step window this actor was
    /// not computing or sending.
    pub measured_idle_frac: f64,
    /// The simulator's predicted idle fraction for the same actor under
    /// the trace-derived cost model.
    pub predicted_idle_frac: f64,
}

/// Measured vs predicted bubble accounting for one traced step.
///
/// Render with `{}` for a per-stage table, or read the fields directly.
#[derive(Debug, Clone, PartialEq)]
pub struct BubbleReport {
    /// Measured step window in seconds (first span start to last span
    /// end across all actors).
    pub makespan_s: f64,
    /// Measured bubble fraction: share of total actor-time (window ×
    /// actors) not spent computing or sending.
    pub measured_bubble: f64,
    /// The simulator's bubble ratio for the same schedule under the
    /// trace-derived cost model.
    pub predicted_bubble: f64,
    /// Per-actor breakdowns, indexed by actor.
    pub stages: Vec<StageReport>,
}

impl fmt::Display for BubbleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "step window {:.3} ms | bubble measured {:.1}% vs predicted {:.1}%",
            self.makespan_s * 1e3,
            self.measured_bubble * 100.0,
            self.predicted_bubble * 100.0
        )?;
        writeln!(
            f,
            "{:<6} {:>12} {:>12} {:>12} {:>10} {:>10}",
            "actor", "compute_ms", "send_ms", "recv_ms", "idle_meas", "idle_pred"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<6} {:>12.3} {:>12.3} {:>12.3} {:>9.1}% {:>9.1}%",
                s.actor,
                s.compute_s * 1e3,
                s.comm_s * 1e3,
                s.wait_s * 1e3,
                s.measured_idle_frac * 100.0,
                s.predicted_idle_frac * 100.0
            )?;
        }
        Ok(())
    }
}

fn median(mut v: Vec<f64>) -> Option<f64> {
    if v.is_empty() {
        return None;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Some(v[v.len() / 2])
}

/// Computes measured per-stage idle time from `trace` and diffs it
/// against the simulator's prediction for `schedule`.
///
/// The prediction runs [`simulate`] with `fwd`/`bwd`/`wgrad` set to the
/// median measured durations of the corresponding span kinds (`p2p` is
/// left at zero: thread-channel sends are not a modeled latency). The
/// measured and predicted idle fractions then answer the same question —
/// "what share of the step did each pipeline rank wait?" — from the
/// trace and from the analytical model respectively.
pub fn bubble_report(trace: &StepTrace, schedule: &Schedule) -> BubbleReport {
    let mut start_ns = u64::MAX;
    let mut end_ns = 0u64;
    for at in &trace.actors {
        for s in &at.spans {
            if s.kind == "op" {
                continue;
            }
            start_ns = start_ns.min(s.start_ns);
            end_ns = end_ns.max(s.start_ns + s.dur_ns);
        }
    }
    let window_s = if end_ns > start_ns {
        (end_ns - start_ns) as f64 / 1e9
    } else {
        0.0
    };

    // Trace-derived uniform cost model: median per-kind task durations.
    let kind_durs = |kind: &str| -> Vec<f64> {
        trace
            .actors
            .iter()
            .flat_map(|at| at.spans.iter())
            .filter(|s| s.kind == kind)
            .map(|s| s.dur_ns as f64 / 1e9)
            .collect()
    };
    let fwd = median(kind_durs("fwd")).unwrap_or(1.0);
    let cost = UniformCost {
        fwd,
        bwd: median(kind_durs("bwd")).unwrap_or(2.0 * fwd),
        wgrad: median(kind_durs("bwdw")).unwrap_or(fwd),
        p2p: 0.0,
    };
    let sim = simulate(schedule, cost).ok();
    let predicted_bubble = sim.as_ref().map(|r| r.bubble_ratio).unwrap_or(f64::NAN);

    let n_actors = schedule.n_actors();
    let mut stages = Vec::with_capacity(n_actors);
    let mut total_busy_s = 0.0;
    for a in 0..n_actors {
        let spans = trace
            .actors
            .iter()
            .find(|at| at.actor == a)
            .map(|at| at.spans.as_slice())
            .unwrap_or(&[]);
        let mut compute_s = 0.0;
        let mut comm_s = 0.0;
        let mut wait_s = 0.0;
        for s in spans {
            let dur = s.dur_ns as f64 / 1e9;
            if COMPUTE_KINDS.contains(&s.kind) {
                compute_s += dur;
            } else if s.kind == "send" {
                comm_s += dur;
            } else if s.kind == "recv" {
                wait_s += dur;
            }
        }
        total_busy_s += compute_s + comm_s;
        let measured_idle_frac = if window_s > 0.0 {
            (1.0 - (compute_s + comm_s) / window_s).max(0.0)
        } else {
            0.0
        };
        let predicted_idle_frac = sim
            .as_ref()
            .map(|r| {
                let busy: f64 = r
                    .timeline
                    .get(a)
                    .map(|tl| tl.iter().map(|e| e.end - e.start).sum())
                    .unwrap_or(0.0);
                if r.makespan > 0.0 {
                    (1.0 - busy / r.makespan).max(0.0)
                } else {
                    0.0
                }
            })
            .unwrap_or(f64::NAN);
        stages.push(StageReport {
            actor: a,
            compute_s,
            comm_s,
            wait_s,
            measured_idle_frac,
            predicted_idle_frac,
        });
    }
    let measured_bubble = if window_s > 0.0 && n_actors > 0 {
        (1.0 - total_busy_s / (window_s * n_actors as f64)).max(0.0)
    } else {
        0.0
    };
    BubbleReport {
        makespan_s: window_s,
        measured_bubble,
        predicted_bubble,
        stages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use raxpp_runtime::{ActorTrace, SpanEvent};
    use raxpp_sched::gpipe;

    fn span(kind: &'static str, start_ns: u64, dur_ns: u64) -> SpanEvent {
        SpanEvent {
            instr: 0,
            kind,
            name: String::new(),
            start_ns,
            dur_ns,
            bytes: 0,
            alloc: None,
        }
    }

    #[test]
    fn idle_actor_shows_bubble() {
        // Two actors over a 10 ms window; actor 1 computes half of it.
        let trace = StepTrace {
            step: 1,
            actors: vec![
                ActorTrace {
                    actor: 0,
                    spans: vec![span("fwd", 0, 10_000_000), span("bwd", 10_000_000, 0)],
                    dropped: 0,
                },
                ActorTrace {
                    actor: 1,
                    spans: vec![
                        span("recv", 0, 5_000_000),
                        span("fwd", 5_000_000, 5_000_000),
                    ],
                    dropped: 0,
                },
            ],
            events: vec![],
        };
        let schedule = gpipe(2, 4).unwrap();
        let r = bubble_report(&trace, &schedule);
        assert!((r.makespan_s - 0.010).abs() < 1e-9);
        assert!(r.stages[0].measured_idle_frac < 0.01);
        assert!((r.stages[1].measured_idle_frac - 0.5).abs() < 0.01);
        assert!((r.stages[1].wait_s - 0.005).abs() < 1e-9);
        assert!(r.predicted_bubble > 0.0, "gpipe must predict a bubble");
        let rendered = r.to_string();
        assert!(rendered.contains("idle_meas"));
    }
}
