//! `raxpp-core` — RaxPP: **MPMD pipeline parallelism for deep-learning
//! training in Rust**, a from-scratch reproduction of *Scaling Deep
//! Learning Training with MPMD Pipeline Parallelism* (JaxPP,
//! MLSys 2025).
//!
//! The crate is the user-facing facade over the full stack:
//!
//! * trace a training step with `pipeline_yield` stage markers
//!   (`raxpp-ir`),
//! * pick or hand-write a pipeline schedule (`raxpp-sched`),
//! * [`compile_train_step`] / [`RemoteMesh::distributed`] partitions the
//!   graph into stages, differentiates them, unrolls the
//!   gradient-accumulation loop, infers all sends/receives, appends the
//!   optimizer, and fuses everything into one instruction stream per
//!   actor (`raxpp-taskgraph`),
//! * the [`Trainer`] drives the threaded single-controller MPMD runtime
//!   (`raxpp-runtime`),
//! * [`experiments`] regenerates the paper's evaluation on the
//!   calibrated cluster simulator (`raxpp-simcluster` +
//!   `raxpp-baselines`).
//!
//! # Example: train a 2-stage MLP with 1F1B
//!
//! ```
//! use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
//! use raxpp_ir::{Tensor, TraceCtx};
//! use raxpp_sched::one_f1b;
//!
//! // Trace: loss = 0.5 * Σ (tanh(x@w1) @ w2)², two stages.
//! let ctx = TraceCtx::new();
//! let w1 = ctx.input([4, 4]);
//! let w2 = ctx.input([4, 4]);
//! let x = ctx.input([2, 4]);
//! let h = ctx.pipeline_yield(&x.matmul(&w1)?.tanh());
//! let y = h.matmul(&w2)?;
//! let loss = y.mul(&y)?.sum().scale(0.5);
//! let jaxpr = ctx.finish(&[loss])?;
//!
//! let schedule = one_f1b(2, 4)?;
//! let trainer = compile_train_step(
//!     &jaxpr, 2, &schedule, Optimizer::Sgd { lr: 0.05 }, CompileOptions::default(),
//! )?;
//! trainer.init(&[Tensor::eye(4), Tensor::eye(4)])?;
//! let data = vec![(0..4).map(|i| Tensor::full([2, 4], 0.1 * i as f32)).collect()];
//! let r1 = trainer.step(&data)?;
//! let r2 = trainer.step(&data)?;
//! assert!(r2.mean_loss < r1.mean_loss); // SGD made progress
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]

// Compile-and-run the code blocks of the parallelism guide as doctests,
// so `docs/parallelism.md` can never drift from the API it documents.
#[cfg(doctest)]
#[doc = include_str!("../../../docs/parallelism.md")]
mod doc_parallelism {}

// Same treatment for the determinism contract: its identity proofs and
// the ZeRO-1-vs-plain-DP bitwise claim execute on every doc test run.
#[cfg(doctest)]
#[doc = include_str!("../../../docs/determinism.md")]
mod doc_determinism {}

pub mod checkpoint;
pub mod experiments;
mod forward;
mod observe;
mod optimizer;
mod trainer;

pub use checkpoint::CheckpointManager;
pub use forward::{compile_forward_step, ForwardOptions, ForwardStep};
pub use observe::{bubble_report, BubbleReport, StageReport};
pub use optimizer::Optimizer;
pub use trainer::{
    compile_train_step, compile_train_step_on, compile_worker_program, CheckpointPolicy,
    CompileOptions, CoreError, DpConfig, RemoteMesh, RetryPolicy, StepResult, TpConfig, Trainer,
};
