//! The serving facade: compile a traced model into a **forward-only**
//! pipelined step and drive it on the MPMD runtime.
//!
//! [`compile_forward_step`] runs the same compiler front half as
//! [`crate::compile_train_step`] — stage partitioning, per-stage
//! differentiation, loop unrolling over the schedule — then projects
//! the unrolled program onto its forward half with
//! [`raxpp_taskgraph::forward_project`] instead of appending an
//! optimizer: backward tasks, gradient accumulation, and activation
//! retention are stripped, frees are re-inserted at last *forward*
//! use, and the surviving jaxprs/buffers are byte-for-byte the ones
//! the training step executes. Same parameters + same microbatch data
//! ⇒ the forward outputs are bitwise-identical to the pre-update
//! outputs of a training step (the serving parity gate —
//! `docs/serving.md`).
//!
//! The resulting [`ForwardStep`] is the substrate `raxpp-serve` builds
//! its continuous-batching engine on: one `forward()` call dispatches
//! one fused instruction stream per actor over
//! `schedule.n_mubatches()` pipeline slots; [`ForwardStep::load_params`]
//! is the between-steps weight-swap primitive; and
//! [`ForwardStep::recover`] / [`ForwardStep::rebalance`] reuse the
//! training fleet's elastic fold machinery for degraded-mode serving
//! (`docs/resilience.md`).

use std::path::Path;
use std::sync::Mutex;

use raxpp_ir::{Jaxpr, Shape, Tensor};
use raxpp_runtime::{Metrics, RebalanceReport, RecoveryReport, Runtime, TransportKind};
use raxpp_sched::{Schedule, TpMap};
use raxpp_taskgraph::{
    bucket_collectives, check_send_recv_order, forward_project, insert_frees, pipeline_model,
    shard_program, unroll_loop, FetchRole, MpmdProgram, UnrollOptions,
};

use crate::trainer::{CompileOptions, CoreError, TpConfig};

/// Options for [`compile_forward_step`].
#[derive(Debug, Clone, Default)]
pub struct ForwardOptions {
    /// Intra-stage tensor parallelism: shard every pipeline stage over
    /// this mesh axis, exactly as in training (PP×TP). The forward
    /// program is projected *first* and sharded *second*, so the
    /// sharded forward compute is the same the training step runs.
    pub tp: Option<TpConfig>,
    /// Actor fabric for the launched runtime (`None` resolves from
    /// `RAXPP_TRANSPORT`, mpsc when unset) — serving traffic rides the
    /// same `Transport` trait as training.
    pub transport: Option<TransportKind>,
}

impl ForwardOptions {
    /// Options matching a training [`CompileOptions`]: same tensor
    /// parallelism, same transport — for compiling the serving twin of
    /// an existing trainer.
    pub fn from_train(opts: &CompileOptions) -> ForwardOptions {
        ForwardOptions {
            tp: opts.tp.clone(),
            transport: opts.transport,
        }
    }
}

/// A compiled, launched forward-only step bound to a live MPMD runtime
/// — the serving analogue of [`crate::Trainer`].
#[derive(Debug)]
pub struct ForwardStep {
    runtime: Runtime,
    n_params: usize,
    n_outputs: usize,
    n_mubatches: usize,
    n_data_inputs: usize,
    param_shapes: Vec<Shape>,
    data_shapes: Vec<Shape>,
    schedule: Schedule,
    tp: TpMap,
    /// The currently-loaded parameters — re-placed fleet-wide after a
    /// recovery or rebalance so degraded-mode serving keeps answering
    /// from the same weight generation.
    params: Mutex<Option<Vec<Tensor>>>,
    /// Forward-step counters/histograms (the serving tier layers its
    /// request-level latency metrics on the same registry).
    metrics: Metrics,
}

/// Compiles a traced model into a launched [`ForwardStep`].
///
/// `jaxpr` is the same yield-annotated microbatch function training
/// uses — `(params…, data…) → (loss, aux…)`, first output a scalar
/// loss — with `n_params` leading parameters. The training form is
/// required because the compiler's front half differentiates the
/// stages before the projection strips the backward tasks; serve the
/// predictions as auxiliary outputs, exactly as traced for training. The forward tasks of one gradient-accumulation
/// unroll over `schedule` are extracted and fused into one
/// forward-only instruction stream per actor; each
/// [`ForwardStep::forward`] call then executes
/// `schedule.n_mubatches()` microbatches through the pipeline.
///
/// # Errors
///
/// Returns [`CoreError`] for invalid models, schedules, or
/// tensor-parallel configurations.
pub fn compile_forward_step(
    jaxpr: &Jaxpr,
    n_params: usize,
    schedule: &Schedule,
    opts: ForwardOptions,
) -> Result<ForwardStep, CoreError> {
    let model = pipeline_model(jaxpr, n_params)?;
    let param_shapes = model.param_shapes();
    let data_shapes = model.data_shapes();
    let n_outputs = jaxpr.outvars().len();
    let n_data_inputs = jaxpr.invars().len() - n_params;
    let compiled = unroll_loop(&model, schedule, UnrollOptions::default())?;
    let mut program: MpmdProgram = forward_project(&compiled.program)?;
    let tp = match &opts.tp {
        Some(cfg) => {
            let degree = cfg.mesh.axis_size(&cfg.axis).ok_or_else(|| {
                CoreError::BadInput(format!(
                    "tensor-parallel axis {:?} is not an axis of the mesh",
                    cfg.axis
                ))
            })?;
            if degree > 1 {
                program = shard_program(&program, &cfg.mesh, &cfg.axis)
                    .map_err(|e| CoreError::BadInput(format!("tensor-parallel lowering: {e}")))?;
            }
            TpMap::new(degree)
        }
        None => TpMap::new(1),
    };
    insert_frees(&mut program);
    if tp.degree() > 1 {
        bucket_collectives(&mut program);
    }
    check_send_recv_order(&program).map_err(|(a, b)| {
        CoreError::BadInput(format!(
            "internal error: send/recv order broken between {a}/{b}"
        ))
    })?;
    #[cfg(debug_assertions)]
    raxpp_taskgraph::verify_program(&program)
        .map_err(|e| CoreError::BadInput(format!("internal error: {e}")))?;

    let kind = opts.transport.unwrap_or_else(TransportKind::from_env);
    let runtime = Runtime::with_transport(program, kind);
    if let Some(lanes) = opts.tp.as_ref().and_then(|cfg| cfg.lanes) {
        runtime.set_tp_lanes(lanes > 1);
    }
    Ok(ForwardStep {
        runtime,
        n_params,
        n_outputs,
        n_mubatches: schedule.n_mubatches(),
        n_data_inputs,
        param_shapes,
        data_shapes,
        schedule: schedule.clone(),
        tp,
        params: Mutex::new(None),
        metrics: Metrics::new(),
    })
}

impl ForwardStep {
    /// Places (or replaces) the model parameters on the actors — the
    /// weight-swap primitive. The first call must precede the first
    /// [`ForwardStep::forward`]; later calls install a new weight
    /// generation between steps, which is what makes zero-downtime
    /// swaps possible: a forward dispatch that already started keeps
    /// its generation, the next one reads the new buffers.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] on count/shape mismatches, or a
    /// runtime placement failure.
    pub fn load_params(&self, params: &[Tensor]) -> Result<(), CoreError> {
        if params.len() != self.n_params {
            return Err(CoreError::BadInput(format!(
                "expected {} parameters, got {}",
                self.n_params,
                params.len()
            )));
        }
        for (p, t) in params.iter().enumerate() {
            if t.shape() != &self.param_shapes[p] {
                return Err(CoreError::BadInput(format!(
                    "parameter {p} shape mismatch: {} vs {}",
                    t.shape(),
                    self.param_shapes[p]
                )));
            }
        }
        self.runtime.place_params(params)?;
        *self.params.lock().unwrap() = Some(params.to_vec());
        Ok(())
    }

    /// Loads the parameter tensors of the newest valid checkpoint
    /// generation under `dir` (a training checkpoint stores parameters
    /// first, then optimizer moments — the moments are ignored) and
    /// installs them via [`ForwardStep::load_params`]. Returns the
    /// generation's step number, or `None` when the directory holds no
    /// valid generation (weights unchanged).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] for I/O failures or a
    /// checkpoint with too few / mis-shaped parameter tensors.
    pub fn load_latest_checkpoint(&self, dir: impl AsRef<Path>) -> Result<Option<u64>, CoreError> {
        let mgr = crate::checkpoint::CheckpointManager::new(dir.as_ref(), usize::MAX);
        let Some((step, tensors)) = mgr
            .latest_valid()
            .map_err(|e| CoreError::BadInput(format!("checkpoint scan failed: {e}")))?
        else {
            return Ok(None);
        };
        if tensors.len() < self.n_params {
            return Err(CoreError::BadInput(format!(
                "checkpoint has {} tensors, serving needs {} parameters",
                tensors.len(),
                self.n_params
            )));
        }
        self.load_params(&tensors[..self.n_params])?;
        Ok(Some(step))
    }

    /// Runs one forward step over `data[input][mubatch]`, returning all
    /// per-microbatch outputs as `outputs[output][mubatch]`.
    ///
    /// Every call executes the full pipeline of
    /// [`ForwardStep::n_mubatches`] slots; the serving tier packs
    /// requests into those slots ([`raxpp_sched::SlotPlan`]) and pads
    /// the rest.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BadInput`] on malformed data and
    /// [`CoreError::Runtime`] on a fleet failure (the caller decides
    /// between [`ForwardStep::recover`] and [`ForwardStep::rebalance`]).
    pub fn forward(&self, data: &[Vec<Tensor>]) -> Result<Vec<Vec<Tensor>>, CoreError> {
        if data.len() != self.n_data_inputs {
            return Err(CoreError::BadInput(format!(
                "expected {} data inputs, got {}",
                self.n_data_inputs,
                data.len()
            )));
        }
        for (i, mbs) in data.iter().enumerate() {
            if mbs.len() != self.n_mubatches {
                return Err(CoreError::BadInput(format!(
                    "data input {i} has {} microbatches, expected {}",
                    mbs.len(),
                    self.n_mubatches
                )));
            }
        }
        if self.params.lock().unwrap().is_none() {
            return Err(CoreError::BadInput(
                "no parameters loaded: call load_params first".into(),
            ));
        }
        let out = match self.runtime.step(data) {
            Ok(o) => o,
            Err(e) => {
                self.metrics.inc("forward_failures_total", 1);
                return Err(e.into());
            }
        };
        self.metrics.inc("forward_steps_total", 1);
        self.metrics
            .observe("forward_step_time_s", out.stats.wall.as_secs_f64());
        let mut outputs: Vec<Vec<Option<Tensor>>> =
            vec![vec![None; self.n_mubatches]; self.n_outputs];
        for (f, t) in out.fetched {
            if let FetchRole::Output { output, mubatch } = f.role {
                outputs[output][mubatch] = Some(t);
            }
        }
        Ok(outputs
            .into_iter()
            .map(|row| {
                row.into_iter()
                    .map(|t| t.expect("missing forward output"))
                    .collect()
            })
            .collect())
    }

    /// Respawns dead actors and re-places the current weight generation
    /// — the first rung of degraded-mode serving after a failed
    /// [`ForwardStep::forward`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Runtime`] when the fleet cannot be
    /// repaired.
    pub fn recover(&self) -> Result<RecoveryReport, CoreError> {
        let report = self.runtime.recover()?;
        self.metrics.inc("recoveries_total", 1);
        self.metrics
            .inc("respawned_actors_total", report.respawned.len() as u64);
        let params = self.params.lock().unwrap();
        if let Some(p) = params.as_ref() {
            self.runtime.place_params(p)?;
        }
        Ok(report)
    }

    /// Permanently folds the given actors' stages onto survivors and
    /// re-places the current weight generation — the elastic rung:
    /// serving continues on fewer actors with identical outputs
    /// (`docs/resilience.md`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Runtime`] when no survivor remains or the
    /// program cannot be re-placed.
    pub fn rebalance(&self, dead: &[usize]) -> Result<RebalanceReport, CoreError> {
        let report = self.runtime.rebalance(dead)?;
        self.runtime.recover()?;
        let params = self.params.lock().unwrap();
        if let Some(p) = params.as_ref() {
            self.runtime.place_params(p)?;
        }
        drop(params);
        self.metrics.inc("rebalances_total", 1);
        Ok(report)
    }

    /// Pipeline slots per forward step (`schedule.n_mubatches()`).
    pub fn n_mubatches(&self) -> usize {
        self.n_mubatches
    }

    /// Number of model outputs per microbatch.
    pub fn n_outputs(&self) -> usize {
        self.n_outputs
    }

    /// Number of data inputs of the traced function.
    pub fn n_data_inputs(&self) -> usize {
        self.n_data_inputs
    }

    /// Number of model parameters.
    pub fn n_params(&self) -> usize {
        self.n_params
    }

    /// Shapes of the model parameters.
    pub fn param_shapes(&self) -> &[Shape] {
        &self.param_shapes
    }

    /// Per-microbatch shapes of the data inputs — what one pipeline
    /// slot consumes (the serving tier pads empty slots with zeros of
    /// these shapes).
    pub fn data_shapes(&self) -> &[Shape] {
        &self.data_shapes
    }

    /// The pipeline schedule the step was compiled for.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The compiled tensor-parallel degree (1 for pure pipeline).
    pub fn tp_degree(&self) -> usize {
        self.tp.degree()
    }

    /// The forward-step metrics registry (the serving tier publishes
    /// its request-level `serve_*` metrics into the same registry —
    /// `docs/observability.md`).
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The underlying runtime (fault injection and program inspection
    /// in tests; tracing).
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }
}
