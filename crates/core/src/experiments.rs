//! Drivers that regenerate every table and figure of the paper's
//! evaluation (§5). Each function returns structured rows; the
//! `raxpp-bench` harnesses print them next to the paper's reported
//! numbers (also recorded here, in [`paper`]).

use raxpp_baselines::{
    nemo_gpt3_config, nemo_llama2_config, simulate_fsdp, simulate_nemo, simulate_spmd_pp,
    spmd_pp_gpt3_config, FsdpConfig, FsdpReport,
};
use raxpp_models::{ModelConfig, RematPolicy};
use raxpp_simcluster::{
    simulate_pipeline, ClusterSpec, ParallelConfig, ScheduleKind, SimError, SimOptions, StepReport,
};

/// The paper's reported numbers, for paper-vs-measured printing.
pub mod paper {
    /// Table 1, JaxPP GPT-3 rows: (GPUs, step seconds, TFLOPS/device).
    pub const JAXPP_GPT3: [(usize, f64, f64); 5] = [
        (64, 9.53, 462.0),
        (128, 9.64, 457.0),
        (256, 9.74, 452.0),
        (512, 9.71, 454.0),
        (1024, 10.26, 430.0),
    ];
    /// Table 1, JAX FSDP GPT-3 rows.
    pub const FSDP_GPT3: [(usize, f64, f64); 5] = [
        (64, 10.63, 415.0),
        (128, 10.70, 412.0),
        (256, 10.91, 404.0),
        (512, 11.01, 400.0),
        (1024, 11.30, 390.0),
    ];
    /// Table 1, JAX SPMD PP GPT-3 row (128 GPUs).
    pub const SPMD_PP_GPT3: (usize, f64, f64) = (128, 13.96, 316.0);
    /// Table 1, NeMo GPT-3 row (128 GPUs).
    pub const NEMO_GPT3: (usize, f64, f64) = (128, 9.78, 500.0);
    /// Table 1, Llama2 70B rows: JaxPP, FSDP, NeMo (all 64 GPUs).
    pub const JAXPP_LLAMA2: (usize, f64, f64) = (64, 8.42, 432.0);
    /// JAX FSDP Llama2 70B row.
    pub const FSDP_LLAMA2: (usize, f64, f64) = (64, 8.44, 431.0);
    /// NeMo Llama2 70B row.
    pub const NEMO_LLAMA2: (usize, f64, f64) = (64, 7.02, 519.0);
    /// Figure 8 weak-scaling efficiencies 64 → 1024 GPUs.
    pub const WEAK_SCALING_JAXPP: f64 = 0.9287;
    /// FSDP weak-scaling efficiency.
    pub const WEAK_SCALING_FSDP: f64 = 0.9397;
    /// §5.2: JaxPP speedup over SPMD PP.
    pub const SPEEDUP_OVER_SPMD_PP: f64 = 1.446;
    /// §5.2/abstract: JaxPP speedup over JAX FSDP.
    pub const SPEEDUP_OVER_FSDP: f64 = 1.11;
    /// §5.2: JaxPP fraction of NeMo's throughput on GPT-3.
    pub const FRACTION_OF_NEMO: f64 = 0.914;
    /// §5.3 / Figure 10: rematerialization's share of SPMD PP step time.
    pub const REMAT_SHARE: f64 = 0.20;
}

/// The paper's JaxPP configuration for Llama2 70B (Table 1): PP=4, TP=8,
/// DP=2, GA=16, microbatch 4, circular repeat 5.
pub fn jaxpp_llama2_config() -> ParallelConfig {
    ParallelConfig {
        pp: 4,
        tp: 8,
        dp: 2,
        microbatch: 4,
        n_microbatches: 16,
        circular_repeat: 5,
        schedule: ScheduleKind::Interleaved1F1B,
    }
}

/// One point of Figure 6: GPT-3 175B on 64 GPUs, GBS 128, sweeping
/// circular repeat and microbatch size.
#[derive(Debug, Clone)]
pub struct Fig6Point {
    /// Circular repeat degree.
    pub circular_repeat: usize,
    /// Microbatch size.
    pub microbatch: usize,
    /// Simulated step (or the reason the configuration is infeasible).
    pub report: Result<StepReport, SimError>,
}

/// Regenerates Figure 6 on `cluster`.
pub fn figure6(cluster: &ClusterSpec) -> Vec<Fig6Point> {
    let gpt3 = ModelConfig::gpt3_175b();
    let mut out = Vec::new();
    for &microbatch in &[1usize, 2, 4] {
        for &repeat in &[1usize, 2, 3, 4, 6, 12] {
            let par = ParallelConfig {
                pp: 8,
                tp: 8,
                dp: 1,
                microbatch,
                n_microbatches: 128 / microbatch,
                circular_repeat: repeat,
                schedule: ScheduleKind::Interleaved1F1B,
            };
            let report = simulate_pipeline(&gpt3, par, cluster, &SimOptions::default());
            out.push(Fig6Point {
                circular_repeat: repeat,
                microbatch,
                report,
            });
        }
    }
    out
}

/// One point of Figure 7: repeat 6, sweeping gradient accumulation and
/// microbatch size.
#[derive(Debug, Clone)]
pub struct Fig7Point {
    /// Microbatch size.
    pub microbatch: usize,
    /// Number of microbatches (gradient accumulation).
    pub n_microbatches: usize,
    /// Simulated step.
    pub report: Result<StepReport, SimError>,
}

/// Regenerates Figure 7 on `cluster`.
pub fn figure7(cluster: &ClusterSpec) -> Vec<Fig7Point> {
    let gpt3 = ModelConfig::gpt3_175b();
    let mut out = Vec::new();
    for &microbatch in &[1usize, 2, 4] {
        for &ga in &[8usize, 16, 32, 64, 128] {
            let par = ParallelConfig {
                pp: 8,
                tp: 8,
                dp: 1,
                microbatch,
                n_microbatches: ga,
                circular_repeat: 6,
                schedule: ScheduleKind::Interleaved1F1B,
            };
            let report = simulate_pipeline(&gpt3, par, cluster, &SimOptions::default());
            out.push(Fig7Point {
                microbatch,
                n_microbatches: ga,
                report,
            });
        }
    }
    out
}

/// One row of Figure 8: weak scaling of JaxPP vs JAX FSDP.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Total GPUs.
    pub gpus: usize,
    /// JaxPP step report.
    pub jaxpp: StepReport,
    /// FSDP step report.
    pub fsdp: FsdpReport,
}

/// Regenerates Figure 8 on `cluster` (64 → 1024 GPUs, GBS 128 → 2048).
///
/// # Errors
///
/// Propagates simulator errors (none occur for the paper's
/// configurations).
pub fn figure8(cluster: &ClusterSpec) -> Result<Vec<Fig8Row>, SimError> {
    let gpt3 = ModelConfig::gpt3_175b();
    let mut rows = Vec::new();
    for dp in [1usize, 2, 4, 8, 16] {
        let par = ParallelConfig::jaxpp_gpt3(dp);
        let jaxpp = simulate_pipeline(&gpt3, par, cluster, &SimOptions::default())?;
        let fsdp = simulate_fsdp(&gpt3, FsdpConfig::paper(par.gpus()), cluster)
            .map_err(SimError::Invalid)?;
        rows.push(Fig8Row {
            gpus: par.gpus(),
            jaxpp,
            fsdp,
        });
    }
    Ok(rows)
}

/// One row of Table 1 / Figure 9.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// System name as in the paper.
    pub system: &'static str,
    /// Workload name.
    pub model: &'static str,
    /// Global batch size in sequences.
    pub gbs: usize,
    /// Total GPUs.
    pub gpus: usize,
    /// Measured step time (seconds).
    pub step_time: f64,
    /// Measured TFLOPS/device.
    pub tflops: f64,
    /// The paper's step time.
    pub paper_step: f64,
    /// The paper's TFLOPS/device.
    pub paper_tflops: f64,
}

/// Regenerates every row of Table 1 (and therefore Figure 9) on
/// `cluster`.
///
/// # Errors
///
/// Propagates simulator errors (none occur for the paper's
/// configurations).
pub fn table1(cluster: &ClusterSpec) -> Result<Vec<Table1Row>, SimError> {
    let gpt3 = ModelConfig::gpt3_175b();
    let llama2 = ModelConfig::llama2_70b();
    let mut rows = Vec::new();

    for (i, &(gpus, ps, pt)) in paper::JAXPP_GPT3.iter().enumerate() {
        let dp = 1 << i;
        let par = ParallelConfig::jaxpp_gpt3(dp);
        debug_assert_eq!(par.gpus(), gpus);
        let r = simulate_pipeline(&gpt3, par, cluster, &SimOptions::default())?;
        rows.push(Table1Row {
            system: "RaxPP (JaxPP)",
            model: "GPT-3 175B",
            gbs: par.global_batch(),
            gpus,
            step_time: r.step_time,
            tflops: r.tflops_per_gpu,
            paper_step: ps,
            paper_tflops: pt,
        });
    }
    for &(gpus, ps, pt) in paper::FSDP_GPT3.iter() {
        let cfg = FsdpConfig::paper(gpus);
        let r = simulate_fsdp(&gpt3, cfg, cluster).map_err(SimError::Invalid)?;
        rows.push(Table1Row {
            system: "JAX FSDP",
            model: "GPT-3 175B",
            gbs: cfg.global_batch,
            gpus,
            step_time: r.step_time,
            tflops: r.tflops_per_gpu,
            paper_step: ps,
            paper_tflops: pt,
        });
    }
    {
        let (gpus, ps, pt) = paper::SPMD_PP_GPT3;
        let par = spmd_pp_gpt3_config();
        let r = simulate_spmd_pp(&gpt3, par, cluster)?;
        rows.push(Table1Row {
            system: "JAX SPMD PP",
            model: "GPT-3 175B",
            gbs: par.global_batch(),
            gpus,
            step_time: r.step_time,
            tflops: r.tflops_per_gpu,
            paper_step: ps,
            paper_tflops: pt,
        });
    }
    {
        let (gpus, ps, pt) = paper::NEMO_GPT3;
        let par = nemo_gpt3_config();
        let r = simulate_nemo(&gpt3, par, cluster)?;
        rows.push(Table1Row {
            system: "NeMo",
            model: "GPT-3 175B",
            gbs: par.global_batch(),
            gpus,
            step_time: r.step_time,
            tflops: r.tflops_per_gpu,
            paper_step: ps,
            paper_tflops: pt,
        });
    }
    {
        let (gpus, ps, pt) = paper::JAXPP_LLAMA2;
        let par = jaxpp_llama2_config();
        let r = simulate_pipeline(&llama2, par, cluster, &SimOptions::default())?;
        rows.push(Table1Row {
            system: "RaxPP (JaxPP)",
            model: "Llama2 70B",
            gbs: par.global_batch(),
            gpus,
            step_time: r.step_time,
            tflops: r.tflops_per_gpu,
            paper_step: ps,
            paper_tflops: pt,
        });
    }
    {
        let (gpus, ps, pt) = paper::FSDP_LLAMA2;
        let cfg = FsdpConfig::paper(gpus);
        let r = simulate_fsdp(&llama2, cfg, cluster).map_err(SimError::Invalid)?;
        rows.push(Table1Row {
            system: "JAX FSDP",
            model: "Llama2 70B",
            gbs: cfg.global_batch,
            gpus,
            step_time: r.step_time,
            tflops: r.tflops_per_gpu,
            paper_step: ps,
            paper_tflops: pt,
        });
    }
    {
        let (gpus, ps, pt) = paper::NEMO_LLAMA2;
        let par = nemo_llama2_config();
        let r = simulate_nemo(&llama2, par, cluster)?;
        rows.push(Table1Row {
            system: "NeMo",
            model: "Llama2 70B",
            gbs: par.global_batch(),
            gpus,
            step_time: r.step_time,
            tflops: r.tflops_per_gpu,
            paper_step: ps,
            paper_tflops: pt,
        });
    }
    Ok(rows)
}

/// Figure 10: the overheads separating SPMD PP from JaxPP, obtained by
/// toggling one mechanism at a time on the SPMD configuration.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// The SPMD PP baseline as-is (GPipe + full remat + sync P2P).
    pub spmd_pp: StepReport,
    /// SPMD PP with asynchronous P2P (isolates the send/recv overlap
    /// win).
    pub spmd_async_p2p: StepReport,
    /// Same configuration but scheduled as 1F1B: the schedule bounds live
    /// activations by the stage count, device memory fits without full
    /// recomputation, and the ≈20% remat cost disappears (§5.3 — this is
    /// the schedule flexibility the SPMD encoding cannot express).
    pub one_f1b: StepReport,
    /// JaxPP proper (interleaved 1F1B) at the same scale.
    pub jaxpp: StepReport,
}

/// Regenerates Figure 10 on `cluster`.
///
/// # Errors
///
/// Propagates simulator errors.
pub fn figure10(cluster: &ClusterSpec) -> Result<Fig10, SimError> {
    let gpt3 = ModelConfig::gpt3_175b();
    let spmd_cfg = spmd_pp_gpt3_config();
    let spmd_pp = simulate_spmd_pp(&gpt3, spmd_cfg, cluster)?;
    let spmd_async_p2p = simulate_pipeline(
        &gpt3,
        spmd_cfg,
        cluster,
        &SimOptions {
            async_p2p: true,
            force_remat: Some(RematPolicy::Full),
            ..SimOptions::default()
        },
    )?;
    let f1b_cfg = ParallelConfig {
        schedule: ScheduleKind::OneF1B,
        ..spmd_cfg
    };
    let one_f1b = simulate_pipeline(&gpt3, f1b_cfg, cluster, &SimOptions::default())?;
    let jaxpp = simulate_pipeline(
        &gpt3,
        ParallelConfig::jaxpp_gpt3(2),
        cluster,
        &SimOptions::default(),
    )?;
    Ok(Fig10 {
        spmd_pp,
        spmd_async_p2p,
        one_f1b,
        jaxpp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure6_covers_grid() {
        let pts = figure6(&ClusterSpec::eos());
        assert_eq!(pts.len(), 18);
        assert!(pts.iter().all(|p| p.report.is_ok()));
    }

    #[test]
    fn figure6_best_repeat_is_interior() {
        // §5.1.1: increasing repeat improves up to the point where
        // dispatch overheads emerge — the optimum is neither 1 nor the
        // maximum.
        let pts = figure6(&ClusterSpec::eos());
        let best = pts
            .iter()
            .filter(|p| p.microbatch == 4)
            .min_by(|a, b| {
                let ta = a.report.as_ref().unwrap().step_time;
                let tb = b.report.as_ref().unwrap().step_time;
                ta.partial_cmp(&tb).unwrap()
            })
            .unwrap();
        assert!(
            best.circular_repeat > 1,
            "repeat=1 should not be optimal (got {})",
            best.circular_repeat
        );
    }

    #[test]
    fn figure7_more_accumulation_helps() {
        let pts = figure7(&ClusterSpec::eos());
        for mbs in [1usize, 2, 4] {
            let series: Vec<&Fig7Point> = pts.iter().filter(|p| p.microbatch == mbs).collect();
            let first = series
                .first()
                .unwrap()
                .report
                .as_ref()
                .unwrap()
                .tflops_per_gpu;
            let last = series
                .last()
                .unwrap()
                .report
                .as_ref()
                .unwrap()
                .tflops_per_gpu;
            assert!(last > first, "mbs={mbs}: utilization should rise with GA");
        }
    }

    #[test]
    fn figure8_matches_paper_efficiencies() {
        let rows = figure8(&ClusterSpec::eos()).unwrap();
        let jaxpp_eff = rows[0].jaxpp.step_time / rows.last().unwrap().jaxpp.step_time;
        let fsdp_eff = rows[0].fsdp.step_time / rows.last().unwrap().fsdp.step_time;
        assert!(
            (jaxpp_eff - paper::WEAK_SCALING_JAXPP).abs() < 0.05,
            "jaxpp {jaxpp_eff:.3}"
        );
        assert!(
            (fsdp_eff - paper::WEAK_SCALING_FSDP).abs() < 0.05,
            "fsdp {fsdp_eff:.3}"
        );
        // JaxPP delivers higher absolute throughput at every scale.
        for row in &rows {
            assert!(
                row.jaxpp.tflops_per_gpu > row.fsdp.tflops_per_gpu,
                "at {}",
                row.gpus
            );
        }
    }

    #[test]
    fn table1_within_tolerance() {
        for row in table1(&ClusterSpec::eos()).unwrap() {
            let err = (row.step_time - row.paper_step).abs() / row.paper_step;
            assert!(
                err < 0.15,
                "{} {} at {} GPUs: {:.2}s vs paper {:.2}s ({:.0}% off)",
                row.system,
                row.model,
                row.gpus,
                row.step_time,
                row.paper_step,
                err * 100.0
            );
        }
    }

    #[test]
    fn headline_ratios_hold() {
        let rows = table1(&ClusterSpec::eos()).unwrap();
        let get = |sys: &str, model: &str, gpus: usize| {
            rows.iter()
                .find(|r| r.system == sys && r.model == model && r.gpus == gpus)
                .unwrap()
                .step_time
        };
        // 1.446x over SPMD PP at 128 GPUs, same global batch.
        let speedup =
            get("JAX SPMD PP", "GPT-3 175B", 128) / get("RaxPP (JaxPP)", "GPT-3 175B", 128);
        assert!(
            (speedup - paper::SPEEDUP_OVER_SPMD_PP).abs() < 0.12,
            "speedup over SPMD PP: {speedup:.3}"
        );
        // ≈1.11x over FSDP at 64 GPUs.
        let over_fsdp = get("JAX FSDP", "GPT-3 175B", 64) / get("RaxPP (JaxPP)", "GPT-3 175B", 64);
        assert!(
            (over_fsdp - paper::SPEEDUP_OVER_FSDP).abs() < 0.08,
            "speedup over FSDP: {over_fsdp:.3}"
        );
        // ≈91.4% of NeMo on GPT-3 (NeMo remains faster).
        let vs_nemo = get("NeMo", "GPT-3 175B", 128) / get("RaxPP (JaxPP)", "GPT-3 175B", 128);
        assert!(
            (vs_nemo - paper::FRACTION_OF_NEMO).abs() < 0.08,
            "fraction of NeMo: {vs_nemo:.3}"
        );
    }

    #[test]
    fn figure10_decomposition() {
        let f = figure10(&ClusterSpec::eos()).unwrap();
        // Remat is the dominant overhead (§5.3): the 1F1B schedule frees
        // enough memory to drop it, saving around 20% of the step.
        use raxpp_models::RematPolicy as RP;
        assert_eq!(f.spmd_pp.remat_policy, RP::Full);
        assert_ne!(f.one_f1b.remat_policy, RP::Full);
        let remat_share = (f.spmd_async_p2p.step_time - f.one_f1b.step_time) / f.spmd_pp.step_time;
        assert!(
            remat_share > 0.10 && remat_share < 0.30,
            "remat share {remat_share:.2} (paper ≈ {})",
            paper::REMAT_SHARE
        );
        // Async P2P helps too, but less.
        assert!(f.spmd_async_p2p.step_time < f.spmd_pp.step_time);
        // JaxPP (interleaved) beats every ablated variant.
        assert!(f.jaxpp.step_time < f.one_f1b.step_time);
    }
}
