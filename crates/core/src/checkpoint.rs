//! Crash-consistent checkpointing: save and restore a
//! [`crate::Trainer`]'s full training state (parameters + optimizer
//! moments) in a versioned, checksummed binary format, with atomic
//! on-disk generations managed by [`CheckpointManager`].
//!
//! # Format v2 (little-endian)
//!
//! | field | type | notes |
//! |---|---|---|
//! | magic | 6 bytes | `RAXPP\x02` |
//! | version | `u32` | currently 2 |
//! | step | `u64` | training step the state was captured after |
//! | count | `u32` | number of tensors |
//! | per tensor: rank | `u32` | |
//! | per tensor: dims | `u64` × rank | |
//! | per tensor: data | `f32` × numel | |
//! | per tensor: crc | `u32` | CRC-32 (IEEE) of the raw data bytes |
//! | footer | `u32` | CRC-32 of every preceding byte of the file |
//!
//! The per-tensor CRC localizes corruption to one tensor; the footer
//! CRC catches truncation and header tampering. All length fields are
//! bounds-checked against the remaining input before any allocation, so
//! a mangled header yields `InvalidData`, never an OOM.
//!
//! # On-disk layout
//!
//! [`CheckpointManager`] writes each generation as a directory
//! `ckpt-<step>/state.bin` under its root. Saves are atomic: the state
//! is written into a `.tmp-ckpt-<step>` staging directory, fsynced,
//! then renamed into place (and the root fsynced), so a crash mid-save
//! leaves the previous generation untouched and the stale staging
//! directory is swept on the next save. Old generations beyond the
//! configured `keep` count are deleted; [`CheckpointManager::latest_valid`]
//! skips corrupt generations (detected via the checksums) and falls
//! back to the newest one that still decodes.

use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use raxpp_ir::{Shape, Tensor};

const MAGIC: &[u8; 6] = b"RAXPP\x02";
/// Format version written into (and required from) the header.
pub const CHECKPOINT_VERSION: u32 = 2;
/// Upper bound on the tensor count field (a real checkpoint holds a few
/// dozen tensors; anything near this is a mangled header).
const MAX_TENSORS: usize = 1 << 20;
/// Upper bound on a tensor's rank.
const MAX_RANK: usize = 64;

fn crc32_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, e) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *e = c;
        }
        table
    })
}

/// CRC-32 (IEEE 802.3, the `cksum`/zlib polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn bad(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Encodes `tensors` captured after `step` into format v2 bytes.
pub fn encode_checkpoint(step: u64, tensors: &[Tensor]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    out.extend_from_slice(&step.to_le_bytes());
    out.extend_from_slice(&(tensors.len() as u32).to_le_bytes());
    for t in tensors {
        let dims = t.shape().dims();
        out.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &d in dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        let data_start = out.len();
        for &v in t.data() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out[data_start..]);
        out.extend_from_slice(&crc.to_le_bytes());
    }
    let footer = crc32(&out);
    out.extend_from_slice(&footer.to_le_bytes());
    out
}

/// Byte-slice cursor with bounds-checked reads.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| bad("truncated checkpoint"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Decodes format v2 bytes into `(step, tensors)`, verifying both the
/// footer checksum and every per-tensor checksum.
///
/// # Errors
///
/// Returns `InvalidData` for a wrong magic or version, any length field
/// inconsistent with the input size, a checksum mismatch, or trailing
/// garbage.
pub fn decode_checkpoint(bytes: &[u8]) -> io::Result<(u64, Vec<Tensor>)> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(bad("truncated checkpoint"));
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(bad("not a RaxPP v2 checkpoint"));
    }
    let (body, footer_bytes) = bytes.split_at(bytes.len() - 4);
    let footer = u32::from_le_bytes(footer_bytes.try_into().unwrap());
    if crc32(body) != footer {
        return Err(bad("checkpoint footer checksum mismatch"));
    }
    let mut c = Cursor {
        buf: body,
        pos: MAGIC.len(),
    };
    let version = c.u32()?;
    if version != CHECKPOINT_VERSION {
        return Err(bad(format!("unsupported checkpoint version {version}")));
    }
    let step = c.u64()?;
    let count = c.u32()? as usize;
    if count > MAX_TENSORS {
        return Err(bad(format!("implausible tensor count {count}")));
    }
    // Every tensor needs at least its rank + crc fields: a cheap bound
    // before trusting `count` for the allocation below.
    if count.saturating_mul(8) > c.remaining() {
        return Err(bad("tensor count exceeds input size"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let rank = c.u32()? as usize;
        if rank > MAX_RANK || rank.saturating_mul(8) > c.remaining() {
            return Err(bad(format!("implausible tensor rank {rank}")));
        }
        let mut dims = Vec::with_capacity(rank);
        let mut numel = 1usize;
        for _ in 0..rank {
            let d = c.u64()?;
            let d = usize::try_from(d).map_err(|_| bad("dimension overflows usize"))?;
            numel = numel
                .checked_mul(d)
                .ok_or_else(|| bad("element count overflows usize"))?;
            dims.push(d);
        }
        let n_bytes = numel
            .checked_mul(4)
            .filter(|&n| n <= c.remaining())
            .ok_or_else(|| bad("tensor data exceeds input size"))?;
        let data_bytes = c.take(n_bytes)?;
        let crc = c.u32()?;
        if crc32(data_bytes) != crc {
            return Err(bad("tensor data checksum mismatch"));
        }
        let data: Vec<f32> = data_bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes(b.try_into().unwrap()))
            .collect();
        out.push(Tensor::from_vec(Shape::new(dims), data).map_err(|e| bad(e.to_string()))?);
    }
    if c.remaining() != 0 {
        return Err(bad("trailing bytes after last tensor"));
    }
    Ok((step, out))
}

/// Writes a list of tensors to `w` in format v2 (with step 0).
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_tensors(mut w: impl Write, tensors: &[Tensor]) -> io::Result<()> {
    w.write_all(&encode_checkpoint(0, tensors))
}

/// Reads a list of tensors written by [`save_tensors`] (or any v2
/// checkpoint), verifying all checksums.
///
/// # Errors
///
/// Returns `InvalidData` for a wrong magic/version, a truncated or
/// tampered stream, or implausible length fields, plus any I/O error.
pub fn load_tensors(mut r: impl Read) -> io::Result<Vec<Tensor>> {
    let mut bytes = Vec::new();
    r.read_to_end(&mut bytes)?;
    decode_checkpoint(&bytes).map(|(_, t)| t)
}

/// Manages atomic, rotated checkpoint generations under one directory.
///
/// See the module docs for the on-disk layout and crash-consistency
/// guarantees.
#[derive(Debug, Clone)]
pub struct CheckpointManager {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointManager {
    /// Creates a manager rooted at `dir`, retaining the newest `keep`
    /// generations (minimum 1). The directory is created on first save.
    pub fn new(dir: impl Into<PathBuf>, keep: usize) -> CheckpointManager {
        CheckpointManager {
            dir: dir.into(),
            keep: keep.max(1),
        }
    }

    /// The root directory generations are stored under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Atomically writes a `ckpt-<step>` generation containing
    /// `tensors`, rotates out generations beyond the keep count, and
    /// sweeps stale staging directories from interrupted saves.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the previous generation is never touched
    /// before the new one is durably in place.
    pub fn save(&self, step: u64, tensors: &[Tensor]) -> io::Result<PathBuf> {
        fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(format!(".tmp-ckpt-{step}"));
        if tmp.exists() {
            fs::remove_dir_all(&tmp)?;
        }
        fs::create_dir(&tmp)?;
        let bytes = encode_checkpoint(step, tensors);
        {
            let mut f = fs::File::create(tmp.join("state.bin"))?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        let finald = self.dir.join(format!("ckpt-{step}"));
        if finald.exists() {
            fs::remove_dir_all(&finald)?;
        }
        fs::rename(&tmp, &finald)?;
        // Make the rename itself durable before rotating anything out.
        if let Ok(d) = fs::File::open(&self.dir) {
            let _ = d.sync_all();
        }
        self.rotate()?;
        Ok(finald)
    }

    fn rotate(&self) -> io::Result<()> {
        let mut gens = self.generations()?;
        while gens.len() > self.keep {
            let (_, path) = gens.remove(0);
            fs::remove_dir_all(path)?;
        }
        // Sweep staging directories left by interrupted saves.
        for entry in fs::read_dir(&self.dir)? {
            let entry = entry?;
            if entry
                .file_name()
                .to_str()
                .is_some_and(|n| n.starts_with(".tmp-ckpt-"))
            {
                let _ = fs::remove_dir_all(entry.path());
            }
        }
        Ok(())
    }

    /// Lists completed generations as `(step, path)`, oldest first.
    /// Staging directories and unrelated entries are ignored.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a missing root yields an empty list.
    pub fn generations(&self) -> io::Result<Vec<(u64, PathBuf)>> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            let name = entry.file_name();
            let Some(step) = name
                .to_str()
                .and_then(|n| n.strip_prefix("ckpt-"))
                .and_then(|s| s.parse::<u64>().ok())
            else {
                continue;
            };
            out.push((step, entry.path()));
        }
        out.sort_unstable_by_key(|(s, _)| *s);
        Ok(out)
    }

    /// Loads the newest generation that decodes cleanly, skipping any
    /// whose checksums fail (corruption or truncation). Returns `None`
    /// when no valid generation exists.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors other than per-generation decode failures
    /// (those fall through to the next-newest generation).
    pub fn latest_valid(&self) -> io::Result<Option<(u64, Vec<Tensor>)>> {
        for (step, path) in self.generations()?.into_iter().rev() {
            let Ok(bytes) = fs::read(path.join("state.bin")) else {
                continue;
            };
            match decode_checkpoint(&bytes) {
                Ok((hdr_step, tensors)) if hdr_step == step => return Ok(Some((step, tensors))),
                // Header/dirname mismatch counts as corruption too.
                _ => continue,
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let tensors = vec![
            Tensor::scalar(3.25),
            Tensor::from_vec([2, 3], vec![1.0, -2.0, 3.5, 0.0, 5.0, -6.25]).unwrap(),
            Tensor::zeros([4]),
        ];
        let mut buf = Vec::new();
        save_tensors(&mut buf, &tensors).unwrap();
        let back = load_tensors(buf.as_slice()).unwrap();
        assert_eq!(tensors, back);
    }

    #[test]
    fn step_roundtrips_through_header() {
        let bytes = encode_checkpoint(42, &[Tensor::scalar(1.0)]);
        let (step, tensors) = decode_checkpoint(&bytes).unwrap();
        assert_eq!(step, 42);
        assert_eq!(tensors, vec![Tensor::scalar(1.0)]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(load_tensors(&b"NOTACHECKPOINT"[..]).is_err());
        assert!(load_tensors(&b"RAXPP\x02"[..]).is_err()); // truncated
        assert!(load_tensors(&b"RAXPP\x01\0\0\0\0"[..]).is_err()); // old version
    }

    #[test]
    fn empty_list_roundtrips() {
        let mut buf = Vec::new();
        save_tensors(&mut buf, &[]).unwrap();
        assert!(load_tensors(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn flipped_data_bit_is_detected() {
        let mut bytes =
            encode_checkpoint(7, &[Tensor::from_vec([3], vec![1.0, 2.0, 3.0]).unwrap()]);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        assert!(decode_checkpoint(&bytes).is_err());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode_checkpoint(7, &[Tensor::zeros([8])]);
        for cut in [bytes.len() - 1, bytes.len() - 5, 10, 0] {
            assert!(decode_checkpoint(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    /// Satellite regression: length fields are attacker-controlled and
    /// must never drive allocations past the input size. Mangle every
    /// plausible header field to huge values and require `InvalidData`
    /// (fast), not an OOM.
    #[test]
    fn mangled_length_fields_error_instead_of_allocating() {
        let base = encode_checkpoint(3, &[Tensor::from_vec([2, 2], vec![1.0; 4]).unwrap()]);
        let count_off = MAGIC.len() + 4 + 8; // magic + version + step
        let rank_off = count_off + 4;
        let dim_off = rank_off + 4;
        for (off, len) in [(count_off, 4), (rank_off, 4), (dim_off, 8)] {
            for fill in [0x7F, 0xFF] {
                let mut bytes = base.clone();
                for b in &mut bytes[off..off + len] {
                    *b = fill;
                }
                let err = decode_checkpoint(&bytes).unwrap_err();
                assert_eq!(
                    err.kind(),
                    io::ErrorKind::InvalidData,
                    "off={off} fill={fill:#x}"
                );
            }
        }
        // Fuzz-ish sweep: flip each header byte to 0xFF individually.
        for off in 0..dim_off + 8 {
            let mut bytes = base.clone();
            bytes[off] = 0xFF;
            assert!(decode_checkpoint(&bytes).is_err(), "byte {off}");
        }
    }

    #[test]
    fn manager_rotates_and_loads_latest() {
        let dir = std::env::temp_dir().join(format!("raxpp-ckpt-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mgr = CheckpointManager::new(&dir, 2);
        for step in 1..=4u64 {
            mgr.save(step, &[Tensor::scalar(step as f32)]).unwrap();
        }
        let gens = mgr.generations().unwrap();
        assert_eq!(gens.iter().map(|(s, _)| *s).collect::<Vec<_>>(), vec![3, 4]);
        let (step, tensors) = mgr.latest_valid().unwrap().unwrap();
        assert_eq!(step, 4);
        assert_eq!(tensors, vec![Tensor::scalar(4.0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = std::env::temp_dir().join(format!("raxpp-ckpt-fb-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mgr = CheckpointManager::new(&dir, 3);
        mgr.save(1, &[Tensor::scalar(1.0)]).unwrap();
        mgr.save(2, &[Tensor::scalar(2.0)]).unwrap();
        // Corrupt generation 2 in place.
        let path = dir.join("ckpt-2/state.bin");
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n / 2] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        let (step, tensors) = mgr.latest_valid().unwrap().unwrap();
        assert_eq!(step, 1);
        assert_eq!(tensors, vec![Tensor::scalar(1.0)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_save_leaves_previous_generation_loadable() {
        let dir = std::env::temp_dir().join(format!("raxpp-ckpt-tmp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mgr = CheckpointManager::new(&dir, 3);
        mgr.save(5, &[Tensor::scalar(5.0)]).unwrap();
        // Simulate a crash mid-save: staging dir written, rename never
        // happened.
        let tmp = dir.join(".tmp-ckpt-6");
        fs::create_dir(&tmp).unwrap();
        fs::write(tmp.join("state.bin"), encode_checkpoint(6, &[])).unwrap();
        let (step, _) = mgr.latest_valid().unwrap().unwrap();
        assert_eq!(step, 5);
        // The next completed save sweeps the stale staging directory.
        mgr.save(7, &[Tensor::scalar(7.0)]).unwrap();
        assert!(!tmp.exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
