//! Checkpointing: save and restore a [`crate::Trainer`]'s full training
//! state (parameters + optimizer moments) in a simple self-describing
//! binary format.
//!
//! Format (little-endian): the magic `RAXPP\x01`, a `u32` tensor count,
//! then per tensor a `u32` rank, `u64` dimension sizes, and the raw
//! `f32` data.

use std::io::{self, Read, Write};

use raxpp_ir::{Shape, Tensor};

const MAGIC: &[u8; 6] = b"RAXPP\x01";

/// Writes a list of tensors to `w`.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_tensors(mut w: impl Write, tensors: &[Tensor]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&(tensors.len() as u32).to_le_bytes())?;
    for t in tensors {
        let dims = t.shape().dims();
        w.write_all(&(dims.len() as u32).to_le_bytes())?;
        for &d in dims {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in t.data() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a list of tensors written by [`save_tensors`].
///
/// # Errors
///
/// Returns `InvalidData` for a wrong magic or truncated stream, plus any
/// I/O error.
pub fn load_tensors(mut r: impl Read) -> io::Result<Vec<Tensor>> {
    let mut magic = [0u8; 6];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a RaxPP checkpoint",
        ));
    }
    let mut u32buf = [0u8; 4];
    let mut u64buf = [0u8; 8];
    r.read_exact(&mut u32buf)?;
    let count = u32::from_le_bytes(u32buf) as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        r.read_exact(&mut u32buf)?;
        let rank = u32::from_le_bytes(u32buf) as usize;
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            r.read_exact(&mut u64buf)?;
            dims.push(u64::from_le_bytes(u64buf) as usize);
        }
        let shape = Shape::new(dims);
        let mut data = vec![0f32; shape.numel()];
        for v in &mut data {
            r.read_exact(&mut u32buf)?;
            *v = f32::from_le_bytes(u32buf);
        }
        out.push(
            Tensor::from_vec(shape, data)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let tensors = vec![
            Tensor::scalar(3.25),
            Tensor::from_vec([2, 3], vec![1.0, -2.0, 3.5, 0.0, 5.0, -6.25]).unwrap(),
            Tensor::zeros([4]),
        ];
        let mut buf = Vec::new();
        save_tensors(&mut buf, &tensors).unwrap();
        let back = load_tensors(buf.as_slice()).unwrap();
        assert_eq!(tensors, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(load_tensors(&b"NOTACHECKPOINT"[..]).is_err());
        assert!(load_tensors(&b"RAXPP\x01"[..]).is_err()); // truncated
    }

    #[test]
    fn empty_list_roundtrips() {
        let mut buf = Vec::new();
        save_tensors(&mut buf, &[]).unwrap();
        assert!(load_tensors(buf.as_slice()).unwrap().is_empty());
    }
}
