//! The JAX SPMD pipeline-parallelism baseline (paper §2.2.2, §5.3):
//! GSPMD's stacked-weights encoding of GPipe.
//!
//! Its three structural handicaps, all imposed by staying inside the
//! SPMD paradigm, are modeled explicitly:
//!
//! 1. **GPipe schedule only** — the encoding cannot express 1F1B or
//!    interleaving, so activation memory scales with the microbatch
//!    count and forces **full rematerialization**;
//! 2. **synchronous stepping** — every loop iteration is a lockstep
//!    shift of the state buffer, so sends block (no async overlap);
//! 3. no per-stage specialization (homogeneous stages), captured by the
//!    forced global remat policy.

use raxpp_models::{ModelConfig, RematPolicy};
use raxpp_simcluster::{
    simulate_pipeline, ClusterSpec, ParallelConfig, ScheduleKind, SimError, SimOptions, StepReport,
};

/// The paper's JAX SPMD PP configuration for GPT-3 (Table 1): GBS 256,
/// GA 128, PP=16, TP=4, DP=2 on 128 GPUs.
pub fn paper_gpt3_config() -> ParallelConfig {
    ParallelConfig {
        pp: 16,
        tp: 4,
        dp: 2,
        microbatch: 1,
        n_microbatches: 128,
        circular_repeat: 1,
        schedule: ScheduleKind::GPipe,
    }
}

/// Simulates one SPMD-PP step: GPipe schedule, full rematerialization,
/// synchronous sends.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying simulator.
pub fn simulate_spmd_pp(
    model: &ModelConfig,
    par: ParallelConfig,
    cluster: &ClusterSpec,
) -> Result<StepReport, SimError> {
    if par.schedule != ScheduleKind::GPipe || par.circular_repeat != 1 {
        return Err(SimError::Invalid(
            "the SPMD encoding can only express the GPipe schedule (paper §2.2.2)".into(),
        ));
    }
    let opts = SimOptions {
        async_p2p: false,
        force_remat: Some(RematPolicy::Full),
        ..SimOptions::default()
    };
    simulate_pipeline(model, par, cluster, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spmd_pp_matches_table1() {
        // Table 1: JAX SPMD PP, GBS 256, 128 GPUs: 13.96 s, 316 TFLOPS.
        let r = simulate_spmd_pp(
            &ModelConfig::gpt3_175b(),
            paper_gpt3_config(),
            &ClusterSpec::eos(),
        )
        .unwrap();
        assert!(
            (r.step_time - 13.96).abs() / 13.96 < 0.12,
            "step {:.2}s vs paper 13.96s",
            r.step_time
        );
        assert!(
            (r.tflops_per_gpu - 316.0).abs() / 316.0 < 0.12,
            "tflops {:.0} vs paper 316",
            r.tflops_per_gpu
        );
    }

    #[test]
    fn spmd_pp_is_pinned_to_full_remat() {
        let r = simulate_spmd_pp(
            &ModelConfig::gpt3_175b(),
            paper_gpt3_config(),
            &ClusterSpec::eos(),
        )
        .unwrap();
        assert_eq!(r.remat_policy, RematPolicy::Full);
        assert!(r.breakdown.remat > 0.0);
        assert!(r.breakdown.sync_send_block > 0.0);
    }

    #[test]
    fn non_gpipe_schedules_rejected() {
        let par = ParallelConfig {
            schedule: ScheduleKind::OneF1B,
            ..paper_gpt3_config()
        };
        assert!(matches!(
            simulate_spmd_pp(&ModelConfig::gpt3_175b(), par, &ClusterSpec::eos()),
            Err(SimError::Invalid(_))
        ));
    }
}
