//! Hierarchical collective timing shared by the baselines.

use raxpp_mesh::LinkSpec;

/// Time to materialize `full_bytes` on every GPU from shards spread over
/// `nodes × gpus_per_node` ranks: the inter-node phase moves the off-node
/// fraction through each node's NICs in parallel, the intra-node phase
/// redistributes over NVLink; the phases pipeline, so the slower one
/// dominates. This hierarchy is what makes full-model all-gathers (FSDP)
/// feasible at all at cluster scale.
pub fn hierarchical_gather_time(
    full_bytes: f64,
    nodes: usize,
    gpus_per_node: usize,
    intra: LinkSpec,
    inter: LinkSpec,
) -> f64 {
    let n = nodes as f64;
    let g = gpus_per_node as f64;
    let inter_phase = if nodes > 1 {
        // Each node imports the (n-1)/n of the buffer it lacks, striped
        // over its g NICs.
        full_bytes * (n - 1.0) / n / (g * inter.bandwidth) + inter.latency * (n - 1.0)
    } else {
        0.0
    };
    let intra_phase = if gpus_per_node > 1 {
        full_bytes * (g - 1.0) / g / intra.bandwidth + intra.latency * (g - 1.0)
    } else {
        0.0
    };
    inter_phase.max(intra_phase)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_node_uses_nvlink_only() {
        let t = hierarchical_gather_time(8e9, 1, 8, LinkSpec::nvlink(), LinkSpec::infiniband());
        // 8 GB * 7/8 over 450 GB/s ≈ 15.6 ms.
        assert!(t > 0.014 && t < 0.018, "t = {t}");
    }

    #[test]
    fn full_gpt3_gather_is_subsecond_on_8_nodes() {
        // 350 GB of BF16 weights over 8 nodes × 8 NICs ≈ 0.77 s — the
        // number that makes the paper's FSDP baseline viable.
        let t = hierarchical_gather_time(350e9, 8, 8, LinkSpec::nvlink(), LinkSpec::infiniband());
        assert!(t > 0.6 && t < 1.0, "t = {t}");
    }

    #[test]
    fn more_nodes_cost_more() {
        let t8 = hierarchical_gather_time(350e9, 8, 8, LinkSpec::nvlink(), LinkSpec::infiniband());
        let t16 =
            hierarchical_gather_time(350e9, 16, 8, LinkSpec::nvlink(), LinkSpec::infiniband());
        assert!(t16 > t8);
    }
}
