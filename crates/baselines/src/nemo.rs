//! The NeMo/Megatron baseline (paper §5.2): interleaved 1F1B pipeline
//! parallelism with hand-fused high-performance kernels.
//!
//! NeMo runs the same schedules JaxPP does; the paper attributes its
//! remaining edge entirely to custom kernels ("NeMo leverages several
//! high-performance kernels that greatly improve end-to-end
//! performance" — §5.2). We therefore reuse the pipeline simulator with
//! the fused-kernel efficiency model.

use raxpp_models::ModelConfig;
use raxpp_simcluster::{
    simulate_pipeline, ClusterSpec, EfficiencyModel, ParallelConfig, ScheduleKind, SimError,
    SimOptions, StepReport,
};

/// The paper's NeMo configuration for GPT-3 (Table 1): GBS 256, GA 64,
/// PP=8, TP=4, DP=4 on 128 GPUs.
pub fn paper_gpt3_config() -> ParallelConfig {
    ParallelConfig {
        pp: 8,
        tp: 4,
        dp: 4,
        microbatch: 1,
        n_microbatches: 64,
        circular_repeat: 6,
        schedule: ScheduleKind::Interleaved1F1B,
    }
}

/// The paper's NeMo configuration for Llama2 70B (Table 1): GBS 128,
/// GA 32, PP=4, TP=4, DP=4 on 64 GPUs.
pub fn paper_llama2_config() -> ParallelConfig {
    ParallelConfig {
        pp: 4,
        tp: 4,
        dp: 4,
        microbatch: 1,
        n_microbatches: 32,
        circular_repeat: 4,
        schedule: ScheduleKind::Interleaved1F1B,
    }
}

/// Simulates one NeMo step: JaxPP-equivalent scheduling plus the
/// fused-kernel efficiency bonus.
///
/// # Errors
///
/// Propagates [`SimError`] from the underlying simulator.
pub fn simulate_nemo(
    model: &ModelConfig,
    par: ParallelConfig,
    cluster: &ClusterSpec,
) -> Result<StepReport, SimError> {
    let fused = ClusterSpec {
        efficiency: EfficiencyModel::fused(),
        ..*cluster
    };
    // NeMo runs with Megatron's distributed optimizer (ZeRO-1), without
    // which its PP=8/TP=4 configuration would not fit 80 GB.
    let opts = SimOptions {
        zero1_optimizer: true,
        ..SimOptions::default()
    };
    simulate_pipeline(model, par, &fused, &opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nemo_gpt3_matches_table1() {
        // Table 1: NeMo GPT-3, GBS 256 on 128 GPUs: 9.78 s, 500 TFLOPS.
        let r = simulate_nemo(
            &ModelConfig::gpt3_175b(),
            paper_gpt3_config(),
            &ClusterSpec::eos(),
        )
        .unwrap();
        assert!(
            (r.step_time - 9.78).abs() / 9.78 < 0.12,
            "step {:.2}s vs paper 9.78s",
            r.step_time
        );
        assert!(
            (r.tflops_per_gpu - 500.0).abs() / 500.0 < 0.12,
            "tflops {:.0} vs paper 500",
            r.tflops_per_gpu
        );
    }

    #[test]
    fn nemo_llama2_matches_table1() {
        // Table 1: NeMo Llama2 70B, GBS 128 on 64 GPUs: 7.02 s, 519 TFLOPS.
        let r = simulate_nemo(
            &ModelConfig::llama2_70b(),
            paper_llama2_config(),
            &ClusterSpec::eos(),
        )
        .unwrap();
        assert!(
            (r.step_time - 7.02).abs() / 7.02 < 0.15,
            "step {:.2}s vs paper 7.02s",
            r.step_time
        );
    }
}
