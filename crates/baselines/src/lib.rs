//! `raxpp-baselines` — the three comparison systems of the paper's
//! evaluation (§5.2, Table 1, Figures 8-10), modeled on the same
//! cluster simulator as RaxPP itself:
//!
//! * [`simulate_fsdp`] — JAX fully-sharded data parallelism (ZeRO-3
//!   style) with hierarchical collectives;
//! * [`simulate_spmd_pp`] — GSPMD's stacked-weights GPipe encoding:
//!   GPipe-only, fully rematerialized, synchronous P2P (§2.2.2);
//! * [`simulate_nemo`] — NeMo/Megatron: the same schedules as RaxPP plus
//!   a fused-kernel efficiency bonus (§5.2).

#![warn(missing_docs)]

mod cluster_ext;
mod fsdp;
mod nemo;
mod spmd_pp;

pub use cluster_ext::hierarchical_gather_time;
pub use fsdp::{simulate_fsdp, FsdpConfig, FsdpReport};
pub use nemo::{
    paper_gpt3_config as nemo_gpt3_config, paper_llama2_config as nemo_llama2_config, simulate_nemo,
};
pub use spmd_pp::{paper_gpt3_config as spmd_pp_gpt3_config, simulate_spmd_pp};
