//! The JAX FSDP baseline (Table 1, Figures 8-9): fully-sharded data
//! parallelism in the style of ZeRO-3 / `jax.experimental` FSDP.
//!
//! Every parameter is sharded across the FSDP domain; each layer's
//! weights are all-gathered before use (forward and backward) and
//! gradients are reduce-scattered — three full-model passes over the
//! network per step, partially overlapped with compute. Collectives use
//! a hierarchical (NVLink intra-node + InfiniBand inter-node) cost
//! model, which is what makes FSDP viable at all at this scale.

use raxpp_mesh::{collective_time, Collective};
use raxpp_models::{static_state_bytes, ModelConfig};

use crate::cluster_ext::hierarchical_gather_time;
use raxpp_simcluster::ClusterSpec;

/// FSDP run configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsdpConfig {
    /// Total GPUs.
    pub gpus: usize,
    /// Size of the parameter-sharding domain (the paper caps it at 128;
    /// beyond that, plain data parallelism multiplies domains).
    pub shard_domain: usize,
    /// Global batch in sequences.
    pub global_batch: usize,
    /// Fraction of collective time hidden behind compute.
    pub overlap: f64,
}

impl FsdpConfig {
    /// The paper's JAX FSDP setting for `gpus` GPUs: shard domain
    /// `min(gpus, 128)`, global batch 2 sequences per GPU, modest
    /// overlap.
    pub fn paper(gpus: usize) -> FsdpConfig {
        FsdpConfig {
            gpus,
            shard_domain: gpus.min(128),
            global_batch: 2 * gpus,
            overlap: 0.1,
        }
    }

    /// Data-parallel replica count on top of the shard domain.
    pub fn dp_replicas(&self) -> usize {
        self.gpus / self.shard_domain
    }
}

/// Result of one simulated FSDP step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsdpReport {
    /// End-to-end step time in seconds.
    pub step_time: f64,
    /// Achieved model TFLOPS per GPU.
    pub tflops_per_gpu: f64,
    /// Pure compute time per GPU (excluding recomputation).
    pub compute: f64,
    /// Exposed collective/recompute time (they overlap each other).
    pub exposed_comm: f64,
    /// Peak memory per device in bytes.
    pub peak_mem_bytes: f64,
}

/// Simulates one FSDP training step.
///
/// # Errors
///
/// Returns a message when the configuration is inconsistent (GPU count
/// not divisible by the shard domain, batch not divisible by GPUs).
pub fn simulate_fsdp(
    model: &ModelConfig,
    cfg: FsdpConfig,
    cluster: &ClusterSpec,
) -> Result<FsdpReport, String> {
    if !cfg.gpus.is_multiple_of(cfg.shard_domain) {
        return Err(format!(
            "gpus {} not divisible by shard domain {}",
            cfg.gpus, cfg.shard_domain
        ));
    }
    if !cfg.global_batch.is_multiple_of(cfg.gpus) {
        return Err(format!(
            "global batch {} not divisible by gpus {}",
            cfg.global_batch, cfg.gpus
        ));
    }
    let seqs_per_gpu = cfg.global_batch / cfg.gpus;

    // Compute: no TP, decent per-GPU GEMMs.
    let eff = cluster.efficiency.efficiency(seqs_per_gpu, 1);
    let flops = model.train_flops(cfg.global_batch as u64);
    let compute = flops / (cfg.gpus as f64 * cluster.gpu.peak_flops * eff);

    // Communication: three full-model passes (all-gather fwd, all-gather
    // bwd, reduce-scatter grads) in BF16 across the shard domain.
    let model_bytes = model.n_params() as f64 * 2.0;
    let nodes = (cfg.shard_domain as f64 / cluster.gpus_per_node as f64).max(1.0);
    let per_pass = hierarchical_gather_time(
        model_bytes,
        nodes as usize,
        cluster.gpus_per_node.min(cfg.shard_domain),
        cluster.intra_link,
        cluster.inter_link,
    );
    let mut comm = 3.0 * per_pass;
    // Extra DP all-reduce across replica domains of the sharded grads.
    if cfg.dp_replicas() > 1 {
        let grad_shard = 2.0 * model.n_params() as f64 / cfg.shard_domain as f64;
        comm += collective_time(
            Collective::AllReduce,
            grad_shard,
            cfg.dp_replicas(),
            cluster.inter_link,
        );
    }
    // FSDP checkpoints activations every layer and recomputes the layer
    // in backward *while waiting for the next weight all-gather*, so the
    // exposed cost is whichever of the two is longer.
    let remat = compute / 3.0;
    let exposed_comm = (comm * (1.0 - cfg.overlap)).max(remat);

    // Optimizer pass over the sharded state.
    const HBM_BW: f64 = 3.35e12;
    let params_per_gpu = model.n_params() as f64 / cfg.shard_domain as f64;
    let static_bytes = static_state_bytes(params_per_gpu);
    let opt = 2.0 * static_bytes / HBM_BW;

    let jitter = 1.0
        + cluster.jitter_per_doubling
            * ((cfg.gpus as f64 / cluster.gpus_per_node as f64) / 8.0)
                .log2()
                .max(0.0);
    let step_time = (compute + exposed_comm + opt) * jitter;
    let tflops_per_gpu = flops / (step_time * cfg.gpus as f64) / 1e12;

    // Memory: sharded state + double-buffered gathered layer weights +
    // per-layer input checkpoints + one layer's live working set.
    let checkpoints = raxpp_models::activation_bytes_per_layer(
        model,
        seqs_per_gpu,
        1,
        raxpp_models::RematPolicy::Full,
    ) * model.n_layers as f64;
    let working_set = raxpp_models::activation_bytes_per_layer(
        model,
        seqs_per_gpu,
        1,
        raxpp_models::RematPolicy::Selective,
    );
    let gathered_layer = 2.0 * model.n_params() as f64 / model.n_layers as f64 * 2.0; // double-buffered
    let peak_mem_bytes = static_bytes + checkpoints + working_set + gathered_layer;

    Ok(FsdpReport {
        step_time,
        tflops_per_gpu,
        compute,
        exposed_comm,
        peak_mem_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fsdp_64_matches_table1() {
        // Table 1: JAX FSDP, GBS 128 on 64 GPUs: 10.63 s, 415 TFLOPS.
        let r = simulate_fsdp(
            &ModelConfig::gpt3_175b(),
            FsdpConfig::paper(64),
            &ClusterSpec::eos(),
        )
        .unwrap();
        assert!(
            (r.step_time - 10.63).abs() / 10.63 < 0.12,
            "step {:.2}s vs paper 10.63s",
            r.step_time
        );
        assert!(
            (r.tflops_per_gpu - 415.0).abs() / 415.0 < 0.12,
            "tflops {:.0} vs paper 415",
            r.tflops_per_gpu
        );
    }

    #[test]
    fn fsdp_weak_scaling_matches_figure8() {
        // Paper: 93.97% efficiency from 64 to 1024 GPUs.
        let base = simulate_fsdp(
            &ModelConfig::gpt3_175b(),
            FsdpConfig::paper(64),
            &ClusterSpec::eos(),
        )
        .unwrap();
        let big = simulate_fsdp(
            &ModelConfig::gpt3_175b(),
            FsdpConfig::paper(1024),
            &ClusterSpec::eos(),
        )
        .unwrap();
        let eff = base.step_time / big.step_time;
        assert!(eff > 0.88 && eff < 1.0, "FSDP weak scaling {eff:.3}");
    }

    #[test]
    fn fsdp_llama2_matches_table1() {
        // Table 1: Llama2 70B FSDP on 64 GPUs: 8.44 s, 431 TFLOPS.
        let r = simulate_fsdp(
            &ModelConfig::llama2_70b(),
            FsdpConfig::paper(64),
            &ClusterSpec::eos(),
        )
        .unwrap();
        assert!(
            (r.step_time - 8.44).abs() / 8.44 < 0.15,
            "step {:.2}s vs paper 8.44s",
            r.step_time
        );
    }

    #[test]
    fn fsdp_memory_fits() {
        let r = simulate_fsdp(
            &ModelConfig::gpt3_175b(),
            FsdpConfig::paper(64),
            &ClusterSpec::eos(),
        )
        .unwrap();
        assert!(r.peak_mem_bytes < 80e9, "{:.1} GB", r.peak_mem_bytes / 1e9);
    }

    #[test]
    fn bad_configs_rejected() {
        let m = ModelConfig::gpt3_175b();
        let c = ClusterSpec::eos();
        assert!(simulate_fsdp(
            &m,
            FsdpConfig {
                gpus: 96,
                shard_domain: 64,
                global_batch: 192,
                overlap: 0.1
            },
            &c
        )
        .is_err());
        assert!(simulate_fsdp(
            &m,
            FsdpConfig {
                gpus: 64,
                shard_domain: 64,
                global_batch: 100,
                overlap: 0.1
            },
            &c
        )
        .is_err());
    }
}
