//! The discrete-event performance simulator: executes a pipeline
//! schedule against the cluster model and reports step time, achieved
//! TFLOPS/device, memory, and a time breakdown (compute, bubble, exposed
//! communication, rematerialization, dispatch) — the quantities behind
//! Table 1 and Figures 6-10.

use std::collections::HashMap;
use std::fmt;

use raxpp_mesh::{collective_time, Collective};
use raxpp_models::{
    activation_bytes_per_layer, remat_compute_factor, static_state_bytes, ModelConfig, RematPolicy,
};
use raxpp_sched::{simulate as sched_simulate, Dir, ScheduleError, Task, UniformCost};

use crate::config::ParallelConfig;
use crate::specs::ClusterSpec;

/// Error raised by the simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The configuration does not fit in device memory under any
    /// rematerialization policy.
    Oom {
        /// Bytes required (best policy).
        required: f64,
        /// Device capacity in bytes.
        capacity: f64,
    },
    /// Schedule construction failed.
    Schedule(ScheduleError),
    /// Inconsistent configuration.
    Invalid(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Oom { required, capacity } => write!(
                f,
                "out of memory: needs {:.1} GB of {:.1} GB",
                required / 1e9,
                capacity / 1e9
            ),
            SimError::Schedule(e) => write!(f, "{e}"),
            SimError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ScheduleError> for SimError {
    fn from(e: ScheduleError) -> Self {
        SimError::Schedule(e)
    }
}

/// Simulation options distinguishing JaxPP from the baselines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimOptions {
    /// Asynchronous P2P send/receive overlapping compute (JaxPP, §4.2).
    /// When false, the sender blocks until delivery (the synchronous
    /// behaviour Figure 10 charges the SPMD baseline for).
    pub async_p2p: bool,
    /// Force a rematerialization policy instead of choosing the cheapest
    /// one that fits (the SPMD-PP baseline is pinned to
    /// [`RematPolicy::Full`], §5.3).
    pub force_remat: Option<RematPolicy>,
    /// Fraction of the data-parallel gradient all-reduce hidden behind
    /// the pipeline cool-down.
    pub dp_overlap: f64,
    /// Dispatch every task as its own driver RPC instead of one fused
    /// stream per actor (ablation of §4.4; adds a controller round trip
    /// per task).
    pub per_task_rpc: bool,
    /// Controller round-trip time charged per RPC in `per_task_rpc` mode.
    pub rpc_rtt: f64,
    /// Shard the FP32 optimizer state across the data-parallel replicas
    /// (ZeRO-1 / Megatron's distributed optimizer). NeMo enables this by
    /// default at these scales; JaxPP's Table 1 runs do not need it.
    pub zero1_optimizer: bool,
    /// Record the per-task timeline in the report (for trace export and
    /// visualization). Off by default to keep tuner sweeps lean.
    pub record_timeline: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            async_p2p: true,
            force_remat: None,
            dp_overlap: 0.5,
            per_task_rpc: false,
            rpc_rtt: 150e-6,
            zero1_optimizer: false,
            record_timeline: false,
        }
    }
}

/// Where one step's time went, averaged per GPU (seconds).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Breakdown {
    /// Useful forward/backward math.
    pub compute: f64,
    /// Extra forward recomputation due to rematerialization.
    pub remat: f64,
    /// Tensor-parallel collectives inside tasks.
    pub tp_comm: f64,
    /// Pipeline P2P time not hidden behind compute.
    pub p2p_exposed: f64,
    /// Sender-side blocking of synchronous sends.
    pub sync_send_block: f64,
    /// Task dispatch overhead (XLA dispatch + optional per-task RPC).
    pub dispatch: f64,
    /// Remaining idle time (the pipeline bubble).
    pub bubble: f64,
    /// Data-parallel gradient all-reduce (exposed part) + optimizer.
    pub dp_and_opt: f64,
}

/// One executed task in a recorded simulation timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEvent {
    /// Actor (pipeline rank) the task ran on.
    pub actor: usize,
    /// The task.
    pub task: Task,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// Result of simulating one training step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepReport {
    /// End-to-end step time in seconds.
    pub step_time: f64,
    /// Achieved model TFLOPS per GPU.
    pub tflops_per_gpu: f64,
    /// Model FLOPs utilization (fraction of peak).
    pub mfu: f64,
    /// Per-GPU time breakdown.
    pub breakdown: Breakdown,
    /// The rematerialization policy chosen (or forced).
    pub remat_policy: RematPolicy,
    /// Peak device memory in bytes.
    pub peak_mem_bytes: f64,
    /// The simulated configuration.
    pub config: ParallelConfig,
    /// Per-task timeline, when requested via
    /// [`SimOptions::record_timeline`].
    pub timeline: Vec<SimEvent>,
}

/// Simulates one training step of `model` under `par` on `cluster`.
///
/// # Errors
///
/// Returns [`SimError::Oom`] when no rematerialization policy fits
/// device memory, or configuration/schedule errors.
pub fn simulate_pipeline(
    model: &ModelConfig,
    par: ParallelConfig,
    cluster: &ClusterSpec,
    opts: &SimOptions,
) -> Result<StepReport, SimError> {
    if par.tp > cluster.gpus_per_node {
        return Err(SimError::Invalid(format!(
            "tp={} exceeds the {}-GPU high-bandwidth domain",
            par.tp, cluster.gpus_per_node
        )));
    }
    if !model.n_layers.is_multiple_of(par.n_stages()) {
        return Err(SimError::Invalid(format!(
            "{} layers do not divide into {} stages",
            model.n_layers,
            par.n_stages()
        )));
    }
    let schedule = par.build_schedule()?;
    let n_stages = par.n_stages();
    let layers_per_stage = model.n_layers as f64 / n_stages as f64;

    // ---- Memory model & remat decision -------------------------------
    let params_per_gpu = model.n_params() as f64 / (par.tp * par.pp) as f64;
    let static_bytes = if opts.zero1_optimizer {
        // BF16 weights+grads resident; FP32 master/Adam state sharded
        // across DP replicas.
        params_per_gpu * (4.0 + 12.0 / par.dp as f64)
    } else {
        static_state_bytes(params_per_gpu)
    };
    // Structural peak of live microbatch activations per actor.
    let structure = sched_simulate(&schedule, UniformCost::default())?;
    let peak_live = structure
        .peak_live_activations
        .iter()
        .copied()
        .max()
        .unwrap_or(0) as f64;
    let act_chunk = |policy: RematPolicy| {
        match policy {
            // Full recomputation stores only the stage-chunk input, not
            // per-layer state.
            RematPolicy::Full => activation_bytes_per_layer(model, par.microbatch, par.tp, policy),
            _ => {
                activation_bytes_per_layer(model, par.microbatch, par.tp, policy) * layers_per_stage
            }
        }
    };
    let candidate_policies = match opts.force_remat {
        Some(p) => vec![p],
        None => vec![RematPolicy::None, RematPolicy::Selective, RematPolicy::Full],
    };
    let mut chosen = None;
    let mut tightest = f64::INFINITY;
    for p in candidate_policies {
        let total = static_bytes + peak_live * act_chunk(p);
        tightest = tightest.min(total);
        if total <= cluster.gpu.memory_bytes {
            chosen = Some((p, total));
            break;
        }
    }
    let Some((policy, peak_mem)) = chosen else {
        return Err(SimError::Oom {
            required: tightest,
            capacity: cluster.gpu.memory_bytes,
        });
    };

    // ---- Per-task costs ----------------------------------------------
    let tokens_per_mb = (par.microbatch * model.seq_len) as u64;
    let eff = cluster.efficiency.efficiency(par.microbatch, par.tp);
    let stage_fwd_flops = model.fwd_flops(tokens_per_mb) * layers_per_stage / model.n_layers as f64;
    let stage_fwd_compute = stage_fwd_flops / (par.tp as f64 * cluster.gpu.peak_flops * eff);
    // Megatron TP: 2 activation all-reduces per layer forward, 2 backward.
    let act_bytes = (par.microbatch * model.seq_len * model.hidden) as f64 * 2.0;
    // Megatron TP inserts 2 activation all-reduces per layer and
    // direction; XLA hides part of them behind independent GEMMs, so
    // only the calibrated exposed fraction costs wall-clock time.
    let tp_comm_fwd = layers_per_stage
        * 2.0
        * collective_time(Collective::AllReduce, act_bytes, par.tp, cluster.intra_link)
        * cluster.tp_comm_exposed;
    let remat_extra = remat_compute_factor(policy) * stage_fwd_compute;
    let fwd_dur = stage_fwd_compute + tp_comm_fwd;
    let bwd_dur = 2.0 * stage_fwd_compute + 2.0 * tp_comm_fwd + remat_extra;
    let dispatch = cluster.dispatch_overhead + if opts.per_task_rpc { opts.rpc_rtt } else { 0.0 };
    // Activation shard crossing pipeline stages (per TP rank, over IB).
    let p2p_bytes = act_bytes / par.tp as f64;
    let p2p_time = cluster.inter_link.p2p_time(p2p_bytes);

    // ---- Event-driven walk of the schedule ---------------------------
    let stage_actor = schedule.stage_actor();
    // Dense tables indexed by (stage, mubatch, dir): this walk runs for
    // every candidate the tuner enumerates.
    let n_mb = schedule.n_mubatches();
    let idx = |t: &Task| {
        (t.stage * n_mb + t.mubatch) * 3
            + match t.dir {
                Dir::Fwd => 0,
                Dir::Bwd => 1,
                Dir::BwdW => 2,
            }
    };
    let mut completion: Vec<f64> = vec![f64::NAN; n_stages * n_mb * 3];
    let mut arrival: Vec<f64> = vec![f64::NAN; n_stages * n_mb * 3];
    let mut actor_time = vec![0.0f64; par.pp];
    let mut link_free: HashMap<(usize, usize), f64> = HashMap::new();
    let mut busy_compute = vec![0.0f64; par.pp];
    let mut busy_remat = vec![0.0f64; par.pp];
    let mut busy_tp = vec![0.0f64; par.pp];
    let mut busy_dispatch = vec![0.0f64; par.pp];
    let mut sync_block = vec![0.0f64; par.pp];
    let mut exposed_p2p = vec![0.0f64; par.pp];

    let mut timeline: Vec<SimEvent> = Vec::new();
    let mut cursor = vec![0usize; par.pp];
    loop {
        let mut progressed = false;
        let mut all_done = true;
        for a in 0..par.pp {
            let tasks = schedule.actor_tasks(a);
            while cursor[a] < tasks.len() {
                let t = tasks[cursor[a]];
                let deps = t.deps(n_stages);
                let mut ready_local: f64 = 0.0;
                let mut ready_remote: f64 = 0.0;
                let mut ok = true;
                for d in &deps {
                    if stage_actor[d.stage] == a {
                        let c = completion[idx(d)];
                        if c.is_nan() {
                            ok = false;
                            break;
                        }
                        ready_local = ready_local.max(c);
                    } else {
                        let c = arrival[idx(d)];
                        if c.is_nan() {
                            ok = false;
                            break;
                        }
                        ready_remote = ready_remote.max(c);
                    }
                }
                if !ok {
                    break;
                }
                let base = actor_time[a].max(ready_local);
                exposed_p2p[a] += (ready_remote - base).max(0.0);
                let start = base.max(ready_remote);
                // Split-backward schedules split the 2x-forward backward
                // into two ~1x halves: B (activation gradients, critical
                // path, pays the rematerialization) and W (weight
                // gradients, deferrable).
                let split = schedule.split_backward();
                let (dur, compute, remat, tp) = match t.dir {
                    Dir::Fwd => (fwd_dur, stage_fwd_compute, 0.0, tp_comm_fwd),
                    Dir::Bwd if split => (
                        stage_fwd_compute + tp_comm_fwd + remat_extra,
                        stage_fwd_compute,
                        remat_extra,
                        tp_comm_fwd,
                    ),
                    Dir::Bwd => (
                        bwd_dur,
                        2.0 * stage_fwd_compute,
                        remat_extra,
                        2.0 * tp_comm_fwd,
                    ),
                    Dir::BwdW => (
                        stage_fwd_compute + tp_comm_fwd,
                        stage_fwd_compute,
                        0.0,
                        tp_comm_fwd,
                    ),
                };
                let end = start + dispatch + dur;
                completion[idx(&t)] = end;
                if opts.record_timeline {
                    timeline.push(SimEvent {
                        actor: a,
                        task: t,
                        start,
                        end,
                    });
                }
                busy_compute[a] += compute;
                busy_remat[a] += remat;
                busy_tp[a] += tp;
                busy_dispatch[a] += dispatch;
                actor_time[a] = end;

                // Schedule the outgoing transfer to the (unique) next
                // consumer stage, if remote.
                let consumer = match t.dir {
                    Dir::Fwd if t.stage + 1 < n_stages => Some(t.stage + 1),
                    Dir::Bwd if t.stage > 0 => Some(t.stage - 1),
                    _ => None,
                };
                if let Some(c) = consumer {
                    let b = stage_actor[c];
                    if b != a {
                        let lf = link_free.entry((a, b)).or_insert(0.0);
                        let t_start = end.max(*lf);
                        let t_end = t_start + p2p_time;
                        *lf = t_end;
                        arrival[idx(&t)] = t_end;
                        if !opts.async_p2p {
                            // Synchronous send: the producer blocks until
                            // delivery (§5.3 / Figure 10).
                            sync_block[a] += t_end - end;
                            actor_time[a] = actor_time[a].max(t_end);
                        }
                    } else {
                        arrival[idx(&t)] = end;
                    }
                }
                cursor[a] += 1;
                progressed = true;
            }
            if cursor[a] < tasks.len() {
                all_done = false;
            }
        }
        if all_done {
            break;
        }
        if !progressed {
            return Err(SimError::Schedule(ScheduleError::Deadlock {
                blocked: vec![],
            }));
        }
    }
    let makespan = actor_time.iter().copied().fold(0.0, f64::max);

    // ---- Post-loop costs ----------------------------------------------
    // DP gradient all-reduce (bf16 grads of the per-GPU shard) over IB.
    let dp_allreduce = collective_time(
        Collective::AllReduce,
        2.0 * params_per_gpu,
        par.dp,
        cluster.inter_link,
    ) * (1.0 - opts.dp_overlap);
    // Optimizer: memory-bound pass over the training state.
    const HBM_BW: f64 = 3.35e12; // H100 HBM3
    let opt_time = 2.0 * static_bytes / HBM_BW;
    // Straggler/contention growth beyond the 8-node rail-optimized
    // domain: the effect that keeps weak scaling at ≈93% (Figure 8).
    let nodes = (par.gpus() as f64 / cluster.gpus_per_node as f64).max(1.0);
    let jitter = 1.0 + cluster.jitter_per_doubling * (nodes / 8.0).log2().max(0.0);
    let step_time = (makespan + dp_allreduce + opt_time) * jitter;

    let n = par.pp as f64;
    let avg = |v: &[f64]| v.iter().sum::<f64>() / n;
    let idle = makespan
        - avg(&busy_compute)
        - avg(&busy_remat)
        - avg(&busy_tp)
        - avg(&busy_dispatch)
        - avg(&sync_block)
        - avg(&exposed_p2p);
    let breakdown = Breakdown {
        compute: avg(&busy_compute),
        remat: avg(&busy_remat),
        tp_comm: avg(&busy_tp),
        p2p_exposed: avg(&exposed_p2p),
        sync_send_block: avg(&sync_block),
        dispatch: avg(&busy_dispatch),
        bubble: idle.max(0.0),
        dp_and_opt: dp_allreduce + opt_time,
    };

    let gpus = par.gpus() as f64;
    let flops = model.train_flops(par.global_batch() as u64);
    let tflops_per_gpu = flops / (step_time * gpus) / 1e12;
    let mfu = tflops_per_gpu * 1e12 / cluster.gpu.peak_flops;

    Ok(StepReport {
        step_time,
        tflops_per_gpu,
        mfu,
        breakdown,
        remat_policy: policy,
        peak_mem_bytes: peak_mem,
        config: par,
        timeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ScheduleKind;

    fn gpt3() -> ModelConfig {
        ModelConfig::gpt3_175b()
    }

    #[test]
    fn flagship_config_is_in_table1_ballpark() {
        // Table 1 row 1: 9.53 s, 462 TFLOPS/device on 64 GPUs.
        let r = simulate_pipeline(
            &gpt3(),
            ParallelConfig::jaxpp_gpt3(1),
            &ClusterSpec::eos(),
            &SimOptions::default(),
        )
        .unwrap();
        assert!(
            (r.step_time - 9.53).abs() / 9.53 < 0.15,
            "step time {:.2}s vs paper 9.53s",
            r.step_time
        );
        assert!(
            (r.tflops_per_gpu - 462.0).abs() / 462.0 < 0.15,
            "tflops {:.0} vs paper 462",
            r.tflops_per_gpu
        );
    }

    #[test]
    fn flagship_fits_memory_without_full_remat() {
        let r = simulate_pipeline(
            &gpt3(),
            ParallelConfig::jaxpp_gpt3(1),
            &ClusterSpec::eos(),
            &SimOptions::default(),
        )
        .unwrap();
        assert_ne!(r.remat_policy, RematPolicy::Full);
        assert!(r.peak_mem_bytes < 80e9);
    }

    #[test]
    fn sync_p2p_is_slower() {
        let par = ParallelConfig::jaxpp_gpt3(1);
        let fast =
            simulate_pipeline(&gpt3(), par, &ClusterSpec::eos(), &SimOptions::default()).unwrap();
        let slow = simulate_pipeline(
            &gpt3(),
            par,
            &ClusterSpec::eos(),
            &SimOptions {
                async_p2p: false,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert!(slow.step_time > fast.step_time);
        assert!(slow.breakdown.sync_send_block > 0.0);
    }

    #[test]
    fn forced_full_remat_costs_about_a_forward() {
        let par = ParallelConfig::jaxpp_gpt3(1);
        let base =
            simulate_pipeline(&gpt3(), par, &ClusterSpec::eos(), &SimOptions::default()).unwrap();
        let remat = simulate_pipeline(
            &gpt3(),
            par,
            &ClusterSpec::eos(),
            &SimOptions {
                force_remat: Some(RematPolicy::Full),
                ..SimOptions::default()
            },
        )
        .unwrap();
        let slowdown = remat.step_time / base.step_time;
        // Paper §5.3: rematerialization accounts for ≈20% of step time.
        assert!(
            slowdown > 1.10 && slowdown < 1.45,
            "full remat slowdown {slowdown:.2} out of expected range"
        );
    }

    #[test]
    fn more_microbatches_improve_utilization() {
        let base = ParallelConfig::jaxpp_gpt3(1);
        let mut last = 0.0;
        for ga in [8, 16, 32] {
            let par = ParallelConfig {
                n_microbatches: ga,
                ..base
            };
            let r = simulate_pipeline(&gpt3(), par, &ClusterSpec::eos(), &SimOptions::default())
                .unwrap();
            assert!(r.tflops_per_gpu > last, "ga={ga}");
            last = r.tflops_per_gpu;
        }
    }

    #[test]
    fn per_task_rpc_hurts() {
        let par = ParallelConfig::jaxpp_gpt3(1);
        let fused =
            simulate_pipeline(&gpt3(), par, &ClusterSpec::eos(), &SimOptions::default()).unwrap();
        let unfused = simulate_pipeline(
            &gpt3(),
            par,
            &ClusterSpec::eos(),
            &SimOptions {
                per_task_rpc: true,
                ..SimOptions::default()
            },
        )
        .unwrap();
        assert!(unfused.step_time > fused.step_time);
    }

    #[test]
    fn oom_reported_for_impossible_configs() {
        // PP=1, TP=1 puts all 175B params on one GPU: hopeless.
        let par = ParallelConfig {
            pp: 1,
            tp: 1,
            dp: 1,
            microbatch: 1,
            n_microbatches: 4,
            circular_repeat: 1,
            schedule: ScheduleKind::OneF1B,
        };
        let err = simulate_pipeline(&gpt3(), par, &ClusterSpec::eos(), &SimOptions::default());
        assert!(matches!(err, Err(SimError::Oom { .. })));
    }

    #[test]
    fn invalid_tp_rejected() {
        let par = ParallelConfig {
            tp: 16,
            ..ParallelConfig::jaxpp_gpt3(1)
        };
        assert!(matches!(
            simulate_pipeline(&gpt3(), par, &ClusterSpec::eos(), &SimOptions::default()),
            Err(SimError::Invalid(_))
        ));
    }

    #[test]
    fn weak_scaling_efficiency_is_high() {
        // Figure 8: 64 → 1024 GPUs at ≈93% weak-scaling efficiency.
        let base = simulate_pipeline(
            &gpt3(),
            ParallelConfig::jaxpp_gpt3(1),
            &ClusterSpec::eos(),
            &SimOptions::default(),
        )
        .unwrap();
        let big = simulate_pipeline(
            &gpt3(),
            ParallelConfig::jaxpp_gpt3(16),
            &ClusterSpec::eos(),
            &SimOptions::default(),
        )
        .unwrap();
        let eff = base.step_time / big.step_time;
        assert!(eff > 0.85 && eff <= 1.0, "weak scaling efficiency {eff:.3}");
    }
}
