//! Chrome-trace export of simulated timelines.
//!
//! Writes the `chrome://tracing` / Perfetto JSON array format, one
//! complete-duration event per simulated task, with pipeline ranks as
//! "threads". Open the file at <https://ui.perfetto.dev> to inspect
//! warm-up bubbles, steady-state interleaving, and cool-down drain
//! exactly as the paper's Figure 2 diagrams them.

use std::io::Write;

use raxpp_sched::{Dir, SimResult};

use crate::sim::{SimEvent, StepReport};

/// Serializes a recorded timeline to chrome-trace JSON.
///
/// Times are exported in microseconds (the format's unit). Events use
/// the runtime's span schema — the same `fwd(mb=…, s=…)` names and
/// `name`/`cat`/`ph`/`ts`/`dur`/`pid`/`tid`/`args` field order that
/// `raxpp-runtime`'s `StepTrace::chrome_trace_json` emits — so a
/// predicted timeline diffs cleanly against a measured one. The category
/// is the task direction so the UI can color by it.
pub fn chrome_trace_json(events: &[SimEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        let name = match e.task.dir {
            Dir::Fwd => "fwd",
            Dir::Bwd => "bwd",
            Dir::BwdW => "bwdw",
        };
        let ts = e.start * 1e6;
        let dur = (e.end - e.start) * 1e6;
        out.push_str(&format!(
            concat!(
                "  {{\"name\": \"{}(mb={}, s={})\", \"cat\": \"{}\", \"ph\": \"X\", ",
                "\"ts\": {:.3}, \"dur\": {:.3}, \"pid\": 0, \"tid\": {}, ",
                "\"args\": {{\"mubatch\": {}, \"stage\": {}}}}}"
            ),
            name,
            e.task.mubatch,
            e.task.stage,
            name,
            ts,
            dur,
            e.actor,
            e.task.mubatch,
            e.task.stage,
        ));
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push(']');
    out
}

/// Exports a `raxpp-sched` uniform-cost [`SimResult`] (the predicted
/// timeline a `bubble_report` diffs against) in the same chrome-trace
/// schema as the measured runtime traces: load the predicted and the
/// measured JSON side by side in Perfetto to see where the real pipeline
/// deviates from the model.
///
/// Simulated time is unitless; it is exported as microseconds directly.
pub fn predicted_chrome_trace_json(result: &SimResult) -> String {
    let events: Vec<SimEvent> = result
        .timeline
        .iter()
        .enumerate()
        .flat_map(|(actor, tl)| {
            tl.iter().map(move |e| SimEvent {
                actor,
                task: e.task,
                start: e.start / 1e6,
                end: e.end / 1e6,
            })
        })
        .collect();
    chrome_trace_json(&events)
}

/// Writes a [`StepReport`]'s recorded timeline as a chrome-trace file.
///
/// # Errors
///
/// Returns an I/O error from writing, or `InvalidInput` when the report
/// has no recorded timeline (simulate with
/// [`crate::SimOptions::record_timeline`] set).
pub fn write_chrome_trace(report: &StepReport, mut w: impl Write) -> std::io::Result<()> {
    if report.timeline.is_empty() {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "report has no timeline; set SimOptions::record_timeline",
        ));
    }
    w.write_all(chrome_trace_json(&report.timeline).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ParallelConfig;
    use crate::sim::{simulate_pipeline, SimOptions};
    use crate::specs::ClusterSpec;
    use raxpp_models::ModelConfig;
    use raxpp_sched::Task;

    #[test]
    fn trace_json_is_wellformed() {
        let events = vec![
            SimEvent {
                actor: 0,
                task: Task::fwd(0, 0),
                start: 0.0,
                end: 0.5,
            },
            SimEvent {
                actor: 1,
                task: Task::bwd(0, 1),
                start: 0.5,
                end: 1.5,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"fwd(mb=0, s=0)\""));
        assert!(json.contains("\"tid\": 1"));
        assert!(json.contains("\"dur\": 1000000.000"));
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn predicted_export_matches_runtime_schema() {
        use raxpp_sched::{gpipe, simulate, UniformCost};
        let r = simulate(&gpipe(4, 4).unwrap(), UniformCost::default()).unwrap();
        let json = predicted_chrome_trace_json(&r);
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        // Runtime span naming: fwd(mb=0, s=0), one entry per task.
        assert!(json.contains("\"fwd(mb=0, s=0)\""));
        assert!(json.contains("\"bwd(mb=3, s=3)\""));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 4 * 4 * 2);
        // Field order is pinned by the runtime's golden trace test.
        assert!(json.contains("\"name\": \"fwd(mb=0, s=0)\", \"cat\": \"fwd\", \"ph\": \"X\""));
    }

    #[test]
    fn recorded_simulation_exports() {
        let r = simulate_pipeline(
            &ModelConfig::gpt3_175b(),
            ParallelConfig::jaxpp_gpt3(1),
            &ClusterSpec::eos(),
            &SimOptions {
                record_timeline: true,
                ..SimOptions::default()
            },
        )
        .unwrap();
        // 48 stages × 32 microbatches × (fwd + bwd).
        assert_eq!(r.timeline.len(), 48 * 32 * 2);
        let mut buf = Vec::new();
        write_chrome_trace(&r, &mut buf).unwrap();
        assert!(buf.len() > 10_000);
    }

    #[test]
    fn unrecorded_simulation_refuses_export() {
        let r = simulate_pipeline(
            &ModelConfig::gpt3_175b(),
            ParallelConfig::jaxpp_gpt3(1),
            &ClusterSpec::eos(),
            &SimOptions::default(),
        )
        .unwrap();
        let mut buf = Vec::new();
        assert!(write_chrome_trace(&r, &mut buf).is_err());
    }
}
