//! `raxpp-simcluster` — a calibrated discrete-event performance model of
//! the paper's evaluation cluster (DGX H100 / InfiniBand NDR400).
//!
//! Real H100 pods are not available here, so the paper's performance
//! experiments run against this simulator instead: pipeline schedules
//! from `raxpp-sched` execute over a machine model with per-task kernel
//! efficiency, tensor-parallel collectives, asynchronous (or synchronous)
//! inter-node P2P with link serialization, per-task dispatch overhead, a
//! device-memory model with automatic rematerialization selection, and
//! data-parallel gradient reduction. Absolute times are approximate by
//! construction; the orderings, crossovers, and ratios of Table 1 and
//! Figures 6-10 are what the downstream benchmarks verify.

#![warn(missing_docs)]

mod config;
mod sim;
mod specs;
mod trace;
mod tuner;

pub use config::{ParallelConfig, ScheduleKind};
pub use sim::{simulate_pipeline, Breakdown, SimError, SimEvent, SimOptions, StepReport};
pub use specs::{ClusterSpec, EfficiencyModel, GpuSpec};
pub use trace::{chrome_trace_json, predicted_chrome_trace_json, write_chrome_trace};
pub use tuner::{tune, TunedConfig, TunerOptions};
