//! Parallelism configurations: the knobs of Table 1 and Figures 6-9.

use std::fmt;

use raxpp_sched::{gpipe, interleaved_1f1b, one_f1b, zero_bubble_h1, Schedule, ScheduleError};

/// Which pipeline schedule a configuration runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScheduleKind {
    /// GPipe: all-forward then all-backward (the SPMD-PP baseline's only
    /// option, §2.2.2).
    GPipe,
    /// 1F1B (Narayanan et al., 2019).
    OneF1B,
    /// Interleaved 1F1B with the configured circular repeat (JaxPP's
    /// evaluation schedule).
    Interleaved1F1B,
    /// Zero-bubble (ZB-H1-style) schedule with split backward passes —
    /// the schedule family the paper's related work cites as enabled by
    /// MPMD runtimes. Extension beyond the paper's own evaluation.
    ZeroBubbleH1,
}

impl fmt::Display for ScheduleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScheduleKind::GPipe => "gpipe",
            ScheduleKind::OneF1B => "1f1b",
            ScheduleKind::Interleaved1F1B => "interleaved-1f1b",
            ScheduleKind::ZeroBubbleH1 => "zero-bubble-h1",
        };
        write!(f, "{s}")
    }
}

/// A complete parallelism configuration for one training run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParallelConfig {
    /// Pipeline-parallel degree (number of actors).
    pub pp: usize,
    /// Tensor-parallel degree within each actor.
    pub tp: usize,
    /// Data-parallel degree (replica pipelines).
    pub dp: usize,
    /// Microbatch size in sequences.
    pub microbatch: usize,
    /// Number of microbatches per step (gradient accumulation).
    pub n_microbatches: usize,
    /// Circular repeat: stages per actor (§2.2.1).
    pub circular_repeat: usize,
    /// The pipeline schedule.
    pub schedule: ScheduleKind,
}

impl ParallelConfig {
    /// Total GPUs used.
    pub fn gpus(&self) -> usize {
        self.pp * self.tp * self.dp
    }

    /// Global batch size in sequences.
    pub fn global_batch(&self) -> usize {
        self.microbatch * self.n_microbatches * self.dp
    }

    /// Total pipeline stages.
    pub fn n_stages(&self) -> usize {
        self.pp * self.circular_repeat
    }

    /// Builds the configured schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`ScheduleError`] from the schedule builders.
    pub fn build_schedule(&self) -> Result<Schedule, ScheduleError> {
        match self.schedule {
            ScheduleKind::GPipe => {
                if self.circular_repeat != 1 {
                    return Err(ScheduleError::Invalid(
                        "gpipe does not support circular repeat".into(),
                    ));
                }
                gpipe(self.pp, self.n_microbatches)
            }
            ScheduleKind::OneF1B => {
                if self.circular_repeat != 1 {
                    return Err(ScheduleError::Invalid(
                        "1f1b requires circular repeat 1 (use interleaved)".into(),
                    ));
                }
                one_f1b(self.pp, self.n_microbatches)
            }
            ScheduleKind::Interleaved1F1B => {
                interleaved_1f1b(self.pp, self.n_microbatches, self.circular_repeat)
            }
            ScheduleKind::ZeroBubbleH1 => {
                if self.circular_repeat != 1 {
                    return Err(ScheduleError::Invalid(
                        "zero-bubble-h1 requires circular repeat 1".into(),
                    ));
                }
                zero_bubble_h1(self.pp, self.n_microbatches)
            }
        }
    }

    /// The paper's flagship JaxPP configuration (Table 1): PP=8, TP=8,
    /// interleaved 1F1B with circular repeat 6, GA=32, microbatch 4,
    /// scaled by `dp` data-parallel replicas.
    pub fn jaxpp_gpt3(dp: usize) -> ParallelConfig {
        ParallelConfig {
            pp: 8,
            tp: 8,
            dp,
            microbatch: 4,
            n_microbatches: 32,
            circular_repeat: 6,
            schedule: ScheduleKind::Interleaved1F1B,
        }
    }
}

impl fmt::Display for ParallelConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pp={} tp={} dp={} mbs={} ga={} repeat={} {}",
            self.pp,
            self.tp,
            self.dp,
            self.microbatch,
            self.n_microbatches,
            self.circular_repeat,
            self.schedule
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaxpp_flagship_matches_table1() {
        let c = ParallelConfig::jaxpp_gpt3(1);
        assert_eq!(c.gpus(), 64);
        assert_eq!(c.global_batch(), 128);
        assert_eq!(c.n_stages(), 48);
        c.build_schedule().unwrap();
    }

    #[test]
    fn gpipe_rejects_repeat() {
        let c = ParallelConfig {
            circular_repeat: 2,
            schedule: ScheduleKind::GPipe,
            ..ParallelConfig::jaxpp_gpt3(1)
        };
        assert!(c.build_schedule().is_err());
    }

    #[test]
    fn scaling_dp_scales_batch() {
        assert_eq!(ParallelConfig::jaxpp_gpt3(4).global_batch(), 512);
        assert_eq!(ParallelConfig::jaxpp_gpt3(16).gpus(), 1024);
    }
}
