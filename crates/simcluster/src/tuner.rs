//! Configuration auto-tuning: exhaustive search over parallelism
//! configurations on the performance model.
//!
//! The paper positions JaxPP against Alpa's *automated* parallelism
//! search (§6): JaxPP gives the user control instead. This module shows
//! the two compose — with a calibrated cost model, the user-controlled
//! configuration space (pp, tp, dp, microbatch size, accumulation,
//! circular repeat, schedule) can simply be enumerated, and the tuner's
//! winner doubles as a validation of the calibration: the paper's
//! hand-chosen flagship configuration should rank at or near the top.

use raxpp_models::ModelConfig;

use crate::config::{ParallelConfig, ScheduleKind};
use crate::sim::{simulate_pipeline, SimOptions, StepReport};
use crate::specs::ClusterSpec;

/// Limits of the tuning sweep.
#[derive(Debug, Clone)]
pub struct TunerOptions {
    /// Schedule kinds to consider.
    pub schedules: Vec<ScheduleKind>,
    /// Microbatch sizes to consider.
    pub microbatches: Vec<usize>,
    /// Maximum circular repeat for interleaved schedules.
    pub max_repeat: usize,
    /// Simulation options applied to every candidate.
    pub sim: SimOptions,
}

impl Default for TunerOptions {
    fn default() -> Self {
        TunerOptions {
            schedules: vec![
                ScheduleKind::OneF1B,
                ScheduleKind::Interleaved1F1B,
                ScheduleKind::ZeroBubbleH1,
            ],
            microbatches: vec![1, 2, 4, 8],
            max_repeat: 12,
            sim: SimOptions::default(),
        }
    }
}

/// One feasible configuration with its simulated performance.
#[derive(Debug, Clone)]
pub struct TunedConfig {
    /// The configuration.
    pub config: ParallelConfig,
    /// Its simulated step.
    pub report: StepReport,
}

/// Enumerates every feasible configuration of `model` on `gpus` GPUs at
/// `global_batch` sequences and returns them sorted by step time
/// (fastest first). Infeasible candidates (out of memory, indivisible
/// layer/batch splits) are silently skipped.
pub fn tune(
    model: &ModelConfig,
    gpus: usize,
    global_batch: usize,
    cluster: &ClusterSpec,
    opts: &TunerOptions,
) -> Vec<TunedConfig> {
    let mut out = Vec::new();
    let mut pp = 1;
    while pp <= gpus {
        for tp_exp in 0.. {
            let tp = 1 << tp_exp;
            if tp > cluster.gpus_per_node || pp * tp > gpus {
                break;
            }
            if !gpus.is_multiple_of(pp * tp) {
                continue;
            }
            let dp = gpus / (pp * tp);
            if !global_batch.is_multiple_of(dp) {
                continue;
            }
            let per_pipeline = global_batch / dp;
            for &mbs in &opts.microbatches {
                if !per_pipeline.is_multiple_of(mbs) {
                    continue;
                }
                let ga = per_pipeline / mbs;
                for &schedule in &opts.schedules {
                    let repeats: Vec<usize> = match schedule {
                        ScheduleKind::Interleaved1F1B => (2..=opts.max_repeat).collect(),
                        _ => vec![1],
                    };
                    for repeat in repeats {
                        let par = ParallelConfig {
                            pp,
                            tp,
                            dp,
                            microbatch: mbs,
                            n_microbatches: ga,
                            circular_repeat: repeat,
                            schedule,
                        };
                        if !model.n_layers.is_multiple_of(par.n_stages()) {
                            continue;
                        }
                        if let Ok(report) = simulate_pipeline(model, par, cluster, &opts.sim) {
                            out.push(TunedConfig {
                                config: par,
                                report,
                            });
                        }
                    }
                }
            }
        }
        pp *= 2;
    }
    out.sort_by(|a, b| a.report.step_time.partial_cmp(&b.report.step_time).unwrap());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuner_finds_feasible_configs_for_gpt3() {
        // A narrowed sweep keeps the debug-mode test fast; the bench
        // harness runs the full default sweep.
        let opts = TunerOptions {
            microbatches: vec![4],
            max_repeat: 6,
            ..TunerOptions::default()
        };
        let results = tune(
            &ModelConfig::gpt3_175b(),
            64,
            128,
            &ClusterSpec::eos(),
            &opts,
        );
        assert!(!results.is_empty());
        // Sorted fastest-first.
        for w in results.windows(2) {
            assert!(w[0].report.step_time <= w[1].report.step_time);
        }
    }

    #[test]
    fn paper_flagship_is_near_optimal() {
        // The calibration check: the paper's hand-tuned configuration
        // (PP=8, TP=8, mbs=4, repeat=6) must be within a few percent of
        // the tuner's best *interleaved* configuration.
        let opts = TunerOptions {
            schedules: vec![ScheduleKind::OneF1B, ScheduleKind::Interleaved1F1B],
            microbatches: vec![2, 4],
            max_repeat: 6,
            ..TunerOptions::default()
        };
        let results = tune(
            &ModelConfig::gpt3_175b(),
            64,
            128,
            &ClusterSpec::eos(),
            &opts,
        );
        let best = &results[0];
        let flagship = results
            .iter()
            .find(|c| {
                c.config.pp == 8
                    && c.config.tp == 8
                    && c.config.microbatch == 4
                    && c.config.circular_repeat == 6
            })
            .expect("flagship config must be feasible");
        let gap = flagship.report.step_time / best.report.step_time;
        assert!(
            gap < 1.08,
            "flagship {:.2}s is {:.1}% off the tuner's best {:.2}s ({})",
            flagship.report.step_time,
            (gap - 1.0) * 100.0,
            best.report.step_time,
            best.config
        );
    }

    #[test]
    fn single_gpu_gpt3_is_infeasible_everywhere() {
        let results = tune(
            &ModelConfig::gpt3_175b(),
            1,
            8,
            &ClusterSpec::eos(),
            &TunerOptions::default(),
        );
        assert!(results.is_empty(), "175B parameters cannot fit one GPU");
    }

    #[test]
    fn tuner_respects_schedule_filter() {
        let opts = TunerOptions {
            schedules: vec![ScheduleKind::GPipe],
            microbatches: vec![1, 4],
            ..TunerOptions::default()
        };
        let results = tune(
            &ModelConfig::gpt3_175b(),
            64,
            128,
            &ClusterSpec::eos(),
            &opts,
        );
        assert!(results
            .iter()
            .all(|c| c.config.schedule == ScheduleKind::GPipe));
    }
}
