//! Hardware model of the evaluation cluster (NVIDIA EOS: DGX H100 nodes
//! on InfiniBand NDR400, paper §5) and the calibrated kernel-efficiency
//! model.
//!
//! Every calibrated constant lives here, with its provenance. Absolute
//! numbers produced by the simulator are approximations by design; the
//! *shape* of the paper's results (orderings, crossovers, ratios) is what
//! the benchmarks check.

use raxpp_mesh::LinkSpec;

/// One GPU's compute and memory capability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Peak dense BF16 throughput in FLOP/s (H100 SXM: 989 TFLOPS).
    pub peak_flops: f64,
    /// Device memory in bytes (H100: 80 GB).
    pub memory_bytes: f64,
}

impl GpuSpec {
    /// NVIDIA H100 SXM5 (the paper's GPUs).
    pub fn h100() -> GpuSpec {
        GpuSpec {
            peak_flops: 989e12,
            memory_bytes: 80e9,
        }
    }
}

/// Kernel-efficiency model: the fraction of peak FLOP/s achieved by the
/// dense kernels of one SPMD task, as a function of microbatch size and
/// tensor-parallel degree.
///
/// Matches the paper's observations (§5.1.1): small microbatches lose
/// kernel-level utilization; higher TP shrinks per-GPU GEMMs. The
/// constants are calibrated so the full simulator reproduces Table 1's
/// JaxPP row (462 TFLOPS at PP=8, TP=8, mbs=4) and Figure 6's ordering
/// of microbatch sizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfficiencyModel {
    /// Efficiency at asymptotically large per-GPU work.
    pub base: f64,
    /// Microbatch half-saturation constant: `f(m) = m / (m + m50)`.
    pub mb_half: f64,
    /// Per-unit TP degradation: `g(t) = 1 / (1 + slope · (t - 1))`.
    pub tp_slope: f64,
    /// Multiplier applied on top (1.0 for JaxPP/JAX; >1 models NeMo's
    /// fused kernels, which the paper credits for NeMo's edge in §5.2).
    pub fused_kernel_bonus: f64,
}

impl EfficiencyModel {
    /// Calibrated default for XLA-generated kernels.
    pub fn xla() -> EfficiencyModel {
        EfficiencyModel {
            base: 0.66,
            mb_half: 0.32,
            tp_slope: 0.016,
            fused_kernel_bonus: 1.0,
        }
    }

    /// NeMo/Transformer-Engine-style fused kernels: same shape, higher
    /// ceiling (paper §5.2: "NeMo leverages several high-performance
    /// kernels").
    pub fn fused() -> EfficiencyModel {
        EfficiencyModel {
            fused_kernel_bonus: 1.13,
            ..EfficiencyModel::xla()
        }
    }

    /// Achieved fraction of peak for microbatch size `mb` at TP degree
    /// `tp`.
    pub fn efficiency(&self, mb: usize, tp: usize) -> f64 {
        let m = mb as f64;
        let f_mb = m / (m + self.mb_half);
        let f_tp = 1.0 / (1.0 + self.tp_slope * (tp as f64 - 1.0));
        (self.base * f_mb * f_tp * self.fused_kernel_bonus).min(0.95)
    }
}

/// The full cluster model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSpec {
    /// Per-GPU capability.
    pub gpu: GpuSpec,
    /// GPUs per node sharing the high-bandwidth domain.
    pub gpus_per_node: usize,
    /// Intra-node interconnect (NVLink/NVSwitch).
    pub intra_link: LinkSpec,
    /// Inter-node interconnect (InfiniBand NDR400).
    pub inter_link: LinkSpec,
    /// Per-task dispatch overhead in seconds: the XLA asynchronous
    /// dispatch of one stage task's kernel sequence plus P2P launch
    /// setup — the cost the paper measures when stages become too small
    /// (§5.1.1, Figure 6's falling tail). A stage task launches dozens
    /// of kernels, so this is a few hundred microseconds.
    pub dispatch_overhead: f64,
    /// Kernel-efficiency model.
    pub efficiency: EfficiencyModel,
    /// Fraction of tensor-parallel collective time *not* hidden behind
    /// compute (XLA overlaps async collectives with independent GEMMs;
    /// calibrated against Table 1).
    pub tp_comm_exposed: f64,
    /// Straggler/network-contention slowdown per doubling of the node
    /// count (the effect that bounds weak scaling in Figure 8 to ≈93%).
    pub jitter_per_doubling: f64,
}

impl ClusterSpec {
    /// The EOS-like default: DGX H100 nodes (8 GPUs, NVSwitch) over
    /// NDR400 InfiniBand.
    pub fn eos() -> ClusterSpec {
        ClusterSpec {
            gpu: GpuSpec::h100(),
            gpus_per_node: 8,
            intra_link: LinkSpec::nvlink(),
            inter_link: LinkSpec::infiniband(),
            dispatch_overhead: 400e-6,
            efficiency: EfficiencyModel::xla(),
            tp_comm_exposed: 0.4,
            jitter_per_doubling: 0.015,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_increases_with_microbatch() {
        let e = EfficiencyModel::xla();
        assert!(e.efficiency(1, 8) < e.efficiency(2, 8));
        assert!(e.efficiency(2, 8) < e.efficiency(4, 8));
    }

    #[test]
    fn efficiency_decreases_with_tp() {
        let e = EfficiencyModel::xla();
        assert!(e.efficiency(4, 8) < e.efficiency(4, 4));
        assert!(e.efficiency(4, 4) < e.efficiency(4, 1));
    }

    #[test]
    fn fused_kernels_are_faster() {
        assert!(
            EfficiencyModel::fused().efficiency(1, 4) > EfficiencyModel::xla().efficiency(1, 4)
        );
    }

    #[test]
    fn efficiency_is_bounded() {
        let e = EfficiencyModel {
            base: 2.0,
            ..EfficiencyModel::xla()
        };
        assert!(e.efficiency(64, 1) <= 0.95);
    }

    #[test]
    fn eos_has_h100s() {
        let c = ClusterSpec::eos();
        assert_eq!(c.gpus_per_node, 8);
        assert_eq!(c.gpu.peak_flops, 989e12);
        assert!(c.intra_link.bandwidth > c.inter_link.bandwidth);
    }
}
