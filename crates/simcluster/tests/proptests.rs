//! Property-style tests over the performance model: for every feasible
//! sampled configuration, the simulator's invariants hold. Cases are
//! drawn from the in-tree deterministic PRNG instead of proptest.

use raxpp_ir::rng::{Rng, SeedableRng, StdRng};
use raxpp_models::ModelConfig;
use raxpp_simcluster::{
    simulate_pipeline, ClusterSpec, ParallelConfig, ScheduleKind, SimError, SimOptions,
};

const CASES: u64 = 48;

fn pick<T: Copy>(rng: &mut StdRng, options: &[T]) -> T {
    options[rng.gen_range(0usize..options.len())]
}

fn random_config(rng: &mut StdRng) -> ParallelConfig {
    let pp = pick(rng, &[1usize, 2, 4, 8, 16]);
    let tp = pick(rng, &[1usize, 2, 4, 8]);
    let dp = pick(rng, &[1usize, 2, 4]);
    let microbatch = pick(rng, &[1usize, 2, 4]);
    let ga_mult = rng.gen_range(1usize..9);
    let repeat = pick(rng, &[1usize, 2, 3, 6]);
    let schedule = pick(
        rng,
        &[
            ScheduleKind::GPipe,
            ScheduleKind::OneF1B,
            ScheduleKind::Interleaved1F1B,
            ScheduleKind::ZeroBubbleH1,
        ],
    );
    ParallelConfig {
        pp,
        tp,
        dp,
        microbatch,
        n_microbatches: pp * ga_mult,
        circular_repeat: match schedule {
            ScheduleKind::Interleaved1F1B => repeat,
            _ => 1,
        },
        schedule,
    }
}

/// Feasible configurations produce internally consistent reports;
/// infeasible ones produce typed errors, never panics.
#[test]
fn reports_are_internally_consistent() {
    let gpt3 = ModelConfig::gpt3_175b();
    let eos = ClusterSpec::eos();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(100 + case);
        let par = random_config(&mut rng);
        match simulate_pipeline(&gpt3, par, &eos, &SimOptions::default()) {
            Ok(r) => {
                assert!(r.step_time > 0.0, "{par:?}");
                assert!(r.tflops_per_gpu > 0.0, "{par:?}");
                assert!(r.mfu > 0.0 && r.mfu < 1.0, "{par:?}: mfu {}", r.mfu);
                assert!(r.peak_mem_bytes <= eos.gpu.memory_bytes, "{par:?}");
                let b = r.breakdown;
                for part in [
                    b.compute,
                    b.remat,
                    b.tp_comm,
                    b.p2p_exposed,
                    b.sync_send_block,
                    b.dispatch,
                    b.bubble,
                    b.dp_and_opt,
                ] {
                    assert!(part >= 0.0, "{par:?}: negative breakdown component");
                }
                // TFLOPS is definitionally flops/(time·gpus).
                let implied = gpt3.train_flops(par.global_batch() as u64)
                    / (r.step_time * par.gpus() as f64)
                    / 1e12;
                assert!((implied - r.tflops_per_gpu).abs() < 1.0, "{par:?}");
                // The per-GPU breakdown cannot exceed the step time by
                // more than numeric noise.
                let accounted = b.compute
                    + b.remat
                    + b.tp_comm
                    + b.p2p_exposed
                    + b.sync_send_block
                    + b.dispatch
                    + b.bubble
                    + b.dp_and_opt;
                assert!(
                    accounted <= r.step_time * 1.001 + 1e-6,
                    "{par:?}: accounted {accounted} vs step {}",
                    r.step_time
                );
            }
            Err(SimError::Oom { required, capacity }) => {
                assert!(required > capacity, "{par:?}");
            }
            Err(SimError::Invalid(_)) | Err(SimError::Schedule(_)) => {}
        }
    }
}

/// Synchronous P2P is never faster than asynchronous P2P for the
/// same configuration.
#[test]
fn async_p2p_never_loses() {
    let gpt3 = ModelConfig::gpt3_175b();
    let eos = ClusterSpec::eos();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(200 + case);
        let par = random_config(&mut rng);
        let a = simulate_pipeline(&gpt3, par, &eos, &SimOptions::default());
        let s = simulate_pipeline(
            &gpt3,
            par,
            &eos,
            &SimOptions {
                async_p2p: false,
                ..SimOptions::default()
            },
        );
        if let (Ok(a), Ok(s)) = (a, s) {
            assert!(a.step_time <= s.step_time + 1e-9, "{par:?}");
        }
    }
}

/// Fused dispatch is never slower than per-task RPCs.
#[test]
fn fusion_never_loses() {
    let gpt3 = ModelConfig::gpt3_175b();
    let eos = ClusterSpec::eos();
    for case in 0..CASES {
        let mut rng = StdRng::seed_from_u64(300 + case);
        let par = random_config(&mut rng);
        let fused = simulate_pipeline(&gpt3, par, &eos, &SimOptions::default());
        let unfused = simulate_pipeline(
            &gpt3,
            par,
            &eos,
            &SimOptions {
                per_task_rpc: true,
                ..SimOptions::default()
            },
        );
        if let (Ok(f), Ok(u)) = (fused, unfused) {
            assert!(f.step_time <= u.step_time + 1e-9, "{par:?}");
        }
    }
}
