//! Property-based tests over the performance model: for every feasible
//! random configuration, the simulator's invariants hold.

use proptest::prelude::*;
use raxpp_models::ModelConfig;
use raxpp_simcluster::{
    simulate_pipeline, ClusterSpec, ParallelConfig, ScheduleKind, SimError, SimOptions,
};

fn config_strategy() -> impl Strategy<Value = ParallelConfig> {
    (
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8), Just(16)],
        prop_oneof![Just(1usize), Just(2), Just(4), Just(8)],
        prop_oneof![Just(1usize), Just(2), Just(4)],
        prop_oneof![Just(1usize), Just(2), Just(4)],
        1usize..=8,
        prop_oneof![Just(1usize), Just(2), Just(3), Just(6)],
        prop_oneof![
            Just(ScheduleKind::GPipe),
            Just(ScheduleKind::OneF1B),
            Just(ScheduleKind::Interleaved1F1B),
            Just(ScheduleKind::ZeroBubbleH1),
        ],
    )
        .prop_map(
            |(pp, tp, dp, microbatch, ga_mult, repeat, schedule)| ParallelConfig {
                pp,
                tp,
                dp,
                microbatch,
                n_microbatches: pp * ga_mult,
                circular_repeat: match schedule {
                    ScheduleKind::Interleaved1F1B => repeat,
                    _ => 1,
                },
                schedule,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Feasible configurations produce internally consistent reports;
    /// infeasible ones produce typed errors, never panics.
    #[test]
    fn reports_are_internally_consistent(par in config_strategy()) {
        let gpt3 = ModelConfig::gpt3_175b();
        let eos = ClusterSpec::eos();
        match simulate_pipeline(&gpt3, par, &eos, &SimOptions::default()) {
            Ok(r) => {
                prop_assert!(r.step_time > 0.0);
                prop_assert!(r.tflops_per_gpu > 0.0);
                prop_assert!(r.mfu > 0.0 && r.mfu < 1.0, "mfu {}", r.mfu);
                prop_assert!(r.peak_mem_bytes <= eos.gpu.memory_bytes);
                let b = r.breakdown;
                for part in [
                    b.compute, b.remat, b.tp_comm, b.p2p_exposed,
                    b.sync_send_block, b.dispatch, b.bubble, b.dp_and_opt,
                ] {
                    prop_assert!(part >= 0.0, "negative breakdown component");
                }
                // TFLOPS is definitionally flops/(time·gpus).
                let implied = gpt3.train_flops(par.global_batch() as u64)
                    / (r.step_time * par.gpus() as f64) / 1e12;
                prop_assert!((implied - r.tflops_per_gpu).abs() < 1.0);
                // The per-GPU breakdown cannot exceed the step time by
                // more than numeric noise.
                let accounted = b.compute + b.remat + b.tp_comm + b.p2p_exposed
                    + b.sync_send_block + b.dispatch + b.bubble + b.dp_and_opt;
                prop_assert!(accounted <= r.step_time * 1.001 + 1e-6,
                    "accounted {accounted} vs step {}", r.step_time);
            }
            Err(SimError::Oom { required, capacity }) => {
                prop_assert!(required > capacity);
            }
            Err(SimError::Invalid(_)) | Err(SimError::Schedule(_)) => {}
        }
    }

    /// Synchronous P2P is never faster than asynchronous P2P for the
    /// same configuration.
    #[test]
    fn async_p2p_never_loses(par in config_strategy()) {
        let gpt3 = ModelConfig::gpt3_175b();
        let eos = ClusterSpec::eos();
        let a = simulate_pipeline(&gpt3, par, &eos, &SimOptions::default());
        let s = simulate_pipeline(
            &gpt3,
            par,
            &eos,
            &SimOptions { async_p2p: false, ..SimOptions::default() },
        );
        if let (Ok(a), Ok(s)) = (a, s) {
            prop_assert!(a.step_time <= s.step_time + 1e-9);
        }
    }

    /// Fused dispatch is never slower than per-task RPCs.
    #[test]
    fn fusion_never_loses(par in config_strategy()) {
        let gpt3 = ModelConfig::gpt3_175b();
        let eos = ClusterSpec::eos();
        let fused = simulate_pipeline(&gpt3, par, &eos, &SimOptions::default());
        let unfused = simulate_pipeline(
            &gpt3,
            par,
            &eos,
            &SimOptions { per_task_rpc: true, ..SimOptions::default() },
        );
        if let (Ok(f), Ok(u)) = (fused, unfused) {
            prop_assert!(f.step_time <= u.step_time + 1e-9);
        }
    }
}
