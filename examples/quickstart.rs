//! Quickstart: trace a two-stage MLP with `pipeline_yield`, compile it
//! for two MPMD actors with the 1F1B schedule, train for a few steps,
//! and verify the pipelined gradients against single-device autodiff.
//!
//! The gradient cross-check at the end is tier 1 of the repo-wide
//! determinism contract (`docs/determinism.md`): pipelined execution
//! is **bitwise** equal to single-device autodiff, not merely close.
//! The mesh here is `(dp, tp) = (1, 1)`; on a wider mesh the `data`
//! vector carries the *global* batch and each data-parallel replica
//! consumes its contiguous `1/d` shard of it — the batch is sharded
//! for throughput, not replicated (`docs/parallelism.md`).
//!
//! Run with: `cargo run -p raxpp-examples --bin quickstart`

use raxpp_core::{CompileOptions, Optimizer, RemoteMesh};
use raxpp_ir::{eval, value_and_grad, Tensor, TraceCtx};
use raxpp_sched::one_f1b;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Trace the microbatch function. The only pipeline-specific code
    //    is the `pipeline_yield` marking the stage boundary (paper §3.2).
    let ctx = TraceCtx::new();
    let w1 = ctx.input([8, 16]);
    let w2 = ctx.input([16, 4]);
    let x = ctx.input([4, 8]); // one microbatch
    let h = x.matmul(&w1)?.gelu();
    let h = ctx.pipeline_yield(&h); // end of stage 0
    let y = h.matmul(&w2)?;
    let loss = y.mul(&y)?.sum().scale(0.5);
    let jaxpr = ctx.finish(&[loss])?;
    println!("traced {} equations across 2 stages", jaxpr.eqns().len());

    // 2. Allocate a mesh of 2 actors and compile with 1F1B over 4
    //    microbatches (paper Figure 4's `mesh.distributed(train_step)`).
    let mesh = RemoteMesh::new(2, (1, 1));
    let schedule = one_f1b(2, 4)?;
    let trainer = mesh.distributed(
        &jaxpr,
        2,
        &schedule,
        Optimizer::Sgd { lr: 0.01 },
        CompileOptions {
            fetch_grads: true,
            ..CompileOptions::default()
        },
    )?;

    // 3. Initialize parameters and make training data.
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(0);
    let params = vec![
        Tensor::randn([8, 16], 0.3, &mut rng),
        Tensor::randn([16, 4], 0.3, &mut rng),
    ];
    trainer.init(&params)?;
    let data: Vec<Vec<Tensor>> = vec![(0..4)
        .map(|_| Tensor::randn([4, 8], 1.0, &mut rng))
        .collect()];

    // 4. Check the very first step's gradients against a single-device
    //    reference.
    let first = trainer.step(&data)?;
    let reference = value_and_grad(&jaxpr, &[0, 1])?;
    let mut expect: Vec<Option<Tensor>> = vec![None; 2];
    #[allow(clippy::needless_range_loop)]
    for mb in 0..4 {
        let outs = eval(
            &reference,
            &[params[0].clone(), params[1].clone(), data[0][mb].clone()],
        )?;
        for p in 0..2 {
            let g = outs[1 + p].clone();
            expect[p] = Some(match expect[p].take() {
                None => g,
                Some(acc) => acc.zip(&g, |a, b| a + b)?,
            });
        }
    }
    let grads = first.grads.as_ref().expect("compiled with fetch_grads");
    for (p, g) in grads.iter().enumerate() {
        assert!(
            g.allclose(expect[p].as_ref().unwrap(), 1e-4),
            "pipelined gradient {p} does not match the reference!"
        );
    }
    println!("MPMD gradients match single-device autodiff ✓");

    // 5. Train.
    println!("step  1: mean loss {:.4}", first.mean_loss);
    for step in 2..=10 {
        let r = trainer.step(&data)?;
        println!(
            "step {step:2}: mean loss {:.4}  ({} fused dispatches)",
            r.mean_loss, r.stats.rpcs
        );
    }
    Ok(())
}
