//! Command-line front end to the cluster simulator: evaluate any
//! parallelism configuration of the paper's workloads, or auto-tune one,
//! without writing code.
//!
//! ```text
//! cargo run --release -p raxpp-examples --bin simulate_cli -- \
//!     --model gpt3 --pp 8 --tp 8 --dp 1 --mbs 4 --ga 32 --repeat 6 \
//!     --schedule interleaved --trace /tmp/step.trace.json
//!
//! cargo run --release -p raxpp-examples --bin simulate_cli -- \
//!     --model llama2 --tune --gpus 64 --gbs 128
//! ```

use std::collections::HashMap;

use raxpp_models::ModelConfig;
use raxpp_simcluster::{
    simulate_pipeline, tune, write_chrome_trace, ClusterSpec, ParallelConfig, ScheduleKind,
    SimOptions, TunerOptions,
};

fn usage() -> ! {
    eprintln!(
        "usage: simulate_cli --model <gpt3|llama2> [--tune --gpus N --gbs N] |\n\
         \x20      [--pp N --tp N --dp N --mbs N --ga N --repeat N\n\
         \x20       --schedule <gpipe|1f1b|interleaved|zb> [--sync-p2p] [--trace FILE]]"
    );
    std::process::exit(2);
}

fn main() {
    let mut args: HashMap<String, String> = HashMap::new();
    let mut flags: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let Some(key) = a.strip_prefix("--") else {
            usage()
        };
        match key {
            "tune" | "sync-p2p" => flags.push(key.to_string()),
            _ => {
                let Some(v) = it.next() else { usage() };
                args.insert(key.to_string(), v);
            }
        }
    }
    let get = |k: &str, default: usize| -> usize {
        args.get(k)
            .map(|v| v.parse().unwrap_or_else(|_| usage()))
            .unwrap_or(default)
    };
    let model = match args.get("model").map(String::as_str) {
        Some("gpt3") | None => ModelConfig::gpt3_175b(),
        Some("llama2") => ModelConfig::llama2_70b(),
        _ => usage(),
    };
    let eos = ClusterSpec::eos();

    if flags.iter().any(|f| f == "tune") {
        let gpus = get("gpus", 64);
        let gbs = get("gbs", 128);
        let results = tune(&model, gpus, gbs, &eos, &TunerOptions::default());
        println!(
            "{} feasible configurations for {model} on {gpus} GPUs @ GBS {gbs}:",
            results.len()
        );
        for (i, c) in results.iter().take(15).enumerate() {
            println!(
                "{:>3}. {:<46} {:>7.2}s {:>6.0} TFLOPS",
                i + 1,
                c.config.to_string(),
                c.report.step_time,
                c.report.tflops_per_gpu
            );
        }
        return;
    }

    let schedule = match args.get("schedule").map(String::as_str) {
        Some("gpipe") => ScheduleKind::GPipe,
        Some("1f1b") => ScheduleKind::OneF1B,
        Some("interleaved") | None => ScheduleKind::Interleaved1F1B,
        Some("zb") => ScheduleKind::ZeroBubbleH1,
        _ => usage(),
    };
    let par = ParallelConfig {
        pp: get("pp", 8),
        tp: get("tp", 8),
        dp: get("dp", 1),
        microbatch: get("mbs", 4),
        n_microbatches: get("ga", 32),
        circular_repeat: get(
            "repeat",
            if schedule == ScheduleKind::Interleaved1F1B {
                6
            } else {
                1
            },
        ),
        schedule,
    };
    let opts = SimOptions {
        async_p2p: !flags.iter().any(|f| f == "sync-p2p"),
        record_timeline: args.contains_key("trace"),
        ..SimOptions::default()
    };
    match simulate_pipeline(&model, par, &eos, &opts) {
        Ok(r) => {
            println!("{model}");
            println!(
                "config        : {par}  ({} GPUs, GBS {})",
                par.gpus(),
                par.global_batch()
            );
            println!("step time     : {:.2} s", r.step_time);
            println!(
                "throughput    : {:.0} TFLOPS/device ({:.1}% MFU)",
                r.tflops_per_gpu,
                r.mfu * 100.0
            );
            println!(
                "memory        : {:.1} GB peak, remat {:?}",
                r.peak_mem_bytes / 1e9,
                r.remat_policy
            );
            let b = r.breakdown;
            println!(
                "breakdown     : compute {:.2}s | remat {:.2}s | tp-comm {:.2}s | p2p {:.3}s | \
                 dispatch {:.3}s | bubble {:.2}s | dp+opt {:.2}s",
                b.compute, b.remat, b.tp_comm, b.p2p_exposed, b.dispatch, b.bubble, b.dp_and_opt
            );
            if let Some(path) = args.get("trace") {
                let f = std::fs::File::create(path).expect("create trace file");
                write_chrome_trace(&r, f).expect("write trace");
                println!("trace         : {path} (open at https://ui.perfetto.dev)");
            }
        }
        Err(e) => {
            eprintln!("infeasible configuration: {e}");
            std::process::exit(1);
        }
    }
}
