//! Reproduce the paper's Figure 2: ASCII timelines of GPipe vs 1F1B
//! (plus interleaved 1F1B), with bubble ratios and activation-memory
//! high-water marks.
//!
//! Forward tasks print as the microbatch digit, backward tasks as
//! letters (`a` = microbatch 0), idle bubbles as dots.
//!
//! Run with: `cargo run -p raxpp-examples --bin schedule_viz`

use raxpp_sched::{
    gpipe, ideal_bubble_ratio, interleaved_1f1b, one_f1b, render_timeline, simulate, UniformCost,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pp = 4;
    let mb = 8;
    let cost = UniformCost {
        fwd: 1.0,
        bwd: 2.0,
        wgrad: 1.0,
        p2p: 0.0,
    };

    println!("=== Figure 2 reproduction: {pp} actors, {mb} microbatches ===\n");
    for schedule in [gpipe(pp, mb)?, one_f1b(pp, mb)?] {
        let sim = simulate(&schedule, cost)?;
        println!("{}", schedule.name());
        print!("{}", render_timeline(&sim, 96));
        println!(
            "  makespan {:.0}  bubble {:.1}%  peak live activations per actor {:?}\n",
            sim.makespan,
            sim.bubble_ratio * 100.0,
            sim.peak_live_activations
        );
    }

    // Interleaved 1F1B: stages shrink with the circular repeat, so scale
    // task durations down accordingly (paper §2.2.1).
    for repeat in [2usize, 4] {
        let schedule = interleaved_1f1b(pp, mb, repeat)?;
        let scaled = UniformCost {
            fwd: cost.fwd / repeat as f64,
            bwd: cost.bwd / repeat as f64,
            wgrad: 0.0,
            p2p: 0.0,
        };
        let sim = simulate(&schedule, scaled)?;
        println!("{}", schedule.name());
        print!("{}", render_timeline(&sim, 96));
        println!(
            "  makespan {:.2}  bubble {:.1}%  (ideal warm-up bubble: {:.1}%)\n",
            sim.makespan,
            sim.bubble_ratio * 100.0,
            ideal_bubble_ratio(pp, mb, repeat) * 100.0
        );
    }

    // Zero-bubble extension: split backward (B = activation grads on the
    // critical path, W = deferred weight grads shown as capital letters).
    let zb = raxpp_sched::zero_bubble_h1(pp, mb)?;
    let zb_cost = UniformCost {
        fwd: 1.0,
        bwd: 1.0,
        wgrad: 1.0,
        p2p: 0.0,
    };
    let sim = simulate(&zb, zb_cost)?;
    println!("{} (extension; W tasks uppercase)", zb.name());
    print!("{}", render_timeline(&sim, 96));
    let f1b_same_work = simulate(&one_f1b(pp, mb)?, cost)?;
    println!(
        "  makespan {:.0} vs 1F1B's {:.0} for the same total work\n",
        sim.makespan, f1b_same_work.makespan
    );

    println!("Takeaways (paper §2.2.1):");
    println!("  * GPipe and 1F1B have the same makespan here, but GPipe keeps");
    println!("    up to {mb} live activations on actor 0 while 1F1B caps it at {pp};");
    println!("  * interleaving shrinks the warm-up bubble as the repeat grows.");
    Ok(())
}
