//! User-defined pipeline schedules: the paper's §4.2 interface — a
//! schedule is just a per-actor list of `Task { mubatch, stage, dir }`,
//! and anything that passes validation runs.
//!
//! This example hand-writes an "eager-backward" schedule for 2 actors,
//! shows the validator rejecting a deadlocking variant, then trains a
//! model under the custom schedule and checks it matches 1F1B exactly.
//!
//! Run with: `cargo run -p raxpp-examples --bin custom_schedule`

use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_sched::{one_f1b, Schedule, Task};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n_mb = 4;

    // A valid hand-written schedule (the paper's list-of-tasks API):
    //   actor 0: all forwards first, then backwards newest-first;
    //   actor 1: strict one-forward-one-backward.
    let custom = Schedule::new(
        "my-eager-bwd",
        2,
        n_mb,
        vec![
            vec![
                Task::fwd(0, 0),
                Task::fwd(1, 0),
                Task::fwd(2, 0),
                Task::fwd(3, 0),
                Task::bwd(0, 0),
                Task::bwd(1, 0),
                Task::bwd(2, 0),
                Task::bwd(3, 0),
            ],
            vec![
                Task::fwd(0, 1),
                Task::bwd(0, 1),
                Task::fwd(1, 1),
                Task::bwd(1, 1),
                Task::fwd(2, 1),
                Task::bwd(2, 1),
                Task::fwd(3, 1),
                Task::bwd(3, 1),
            ],
        ],
    )?;
    println!("validated custom schedule:\n{custom}");

    // The validator rejects incorrect schedules with a precise reason.
    let deadlocking = Schedule::new(
        "broken",
        2,
        1,
        vec![
            vec![Task::bwd(0, 0), Task::fwd(0, 0)], // backward before forward
            vec![Task::fwd(0, 1), Task::bwd(0, 1)],
        ],
    );
    println!("\nbroken schedule rejected: {}", deadlocking.unwrap_err());

    let missing = Schedule::new(
        "incomplete",
        2,
        1,
        vec![
            vec![Task::fwd(0, 0)],
            vec![Task::fwd(0, 1), Task::bwd(0, 1)],
        ],
    );
    println!("incomplete schedule rejected: {}\n", missing.unwrap_err());

    // Train the same model under the custom schedule and under 1F1B —
    // different execution orders of the same dataflow produce identical
    // losses.
    let model = mlp_chain(6, 2, 4, 2, 5)?;
    use raxpp_ir::rng::SeedableRng;
    let mut rng = raxpp_ir::rng::StdRng::seed_from_u64(1);
    let data: Vec<Vec<Tensor>> = vec![(0..n_mb)
        .map(|_| Tensor::randn([2, 6], 1.0, &mut rng))
        .collect()];

    let mut losses = Vec::new();
    for schedule in [custom, one_f1b(2, n_mb)?] {
        let trainer = compile_train_step(
            &model.jaxpr,
            model.n_params,
            &schedule,
            Optimizer::Sgd { lr: 0.05 },
            CompileOptions::default(),
        )?;
        trainer.init(&model.init)?;
        let mut series = Vec::new();
        for _ in 0..5 {
            series.push(trainer.step(&data)?.mean_loss);
        }
        println!("{:<24} losses: {series:.4?}", schedule.name());
        losses.push(series);
    }
    for (a, b) in losses[0].iter().zip(&losses[1]) {
        assert!((a - b).abs() <= 1e-4 * a.abs().max(1.0));
    }
    println!("\ncustom schedule and 1F1B agree exactly ✓");
    Ok(())
}
