//! One-shot regeneration of the paper's Table 1 and the headline claims
//! of §5.2 (Figure 9) on the calibrated cluster simulator, printed as
//! paper-vs-measured.
//!
//! Run with: `cargo run --release -p raxpp-examples --bin paper_tables`

use raxpp_core::experiments::{self, paper};
use raxpp_simcluster::ClusterSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = ClusterSpec::eos();
    println!("Table 1 — training performance (simulated DGX H100 / NDR400 cluster)");
    println!(
        "{:<16}{:<12}{:>6}{:>7} | {:>9}{:>9}{:>7} | {:>9}{:>9}",
        "System", "Model", "GBS", "GPUs", "step(s)", "paper", "err%", "TFLOPS", "paper"
    );
    println!("{}", "-".repeat(92));
    for row in experiments::table1(&cluster)? {
        let err = (row.step_time - row.paper_step) / row.paper_step * 100.0;
        println!(
            "{:<16}{:<12}{:>6}{:>7} | {:>9.2}{:>9.2}{:>+7.1} | {:>9.0}{:>9.0}",
            row.system,
            row.model,
            row.gbs,
            row.gpus,
            row.step_time,
            row.paper_step,
            err,
            row.tflops,
            row.paper_tflops
        );
    }

    println!("\nHeadline claims (§5.2 / Figure 9):");
    let rows = experiments::table1(&cluster)?;
    let get = |sys: &str, model: &str, gpus: usize| {
        rows.iter()
            .find(|r| r.system == sys && r.model == model && r.gpus == gpus)
            .map(|r| r.step_time)
            .unwrap()
    };
    let speedup_spmd =
        get("JAX SPMD PP", "GPT-3 175B", 128) / get("RaxPP (JaxPP)", "GPT-3 175B", 128);
    let speedup_fsdp = get("JAX FSDP", "GPT-3 175B", 64) / get("RaxPP (JaxPP)", "GPT-3 175B", 64);
    let vs_nemo = get("NeMo", "GPT-3 175B", 128) / get("RaxPP (JaxPP)", "GPT-3 175B", 128);
    println!(
        "  speedup over SPMD PP : {speedup_spmd:.3}x   (paper {:.3}x)",
        paper::SPEEDUP_OVER_SPMD_PP
    );
    println!(
        "  speedup over JAX FSDP: {speedup_fsdp:.3}x   (paper {:.2}x)",
        paper::SPEEDUP_OVER_FSDP
    );
    // NeMo's step is shorter; JaxPP achieves this fraction of its
    // throughput.
    println!(
        "  fraction of NeMo     : {vs_nemo:.3}    (paper {:.3})",
        paper::FRACTION_OF_NEMO
    );
    Ok(())
}
