//! Helper-free placeholder library target so `raxpp-examples` builds; all
//! content lives in the example binaries at the package root.
