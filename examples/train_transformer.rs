//! Train a small transformer language model (single-head attention,
//! pre-norm residual blocks, tied embeddings) across 4 MPMD actors with
//! the interleaved 1F1B schedule — the paper's full feature set on the
//! executable runtime.
//!
//! The task is synthetic character-level modeling: predict the next
//! token of cyclic sequences. Watch the loss fall from ≈ln(V) toward 0.
//!
//! Every step here is covered by the bitwise tier of the determinism
//! contract (`docs/determinism.md`): the pipelined loss equals the
//! single-device loss bit for bit, tied embeddings included. Were this
//! compiled with a data-parallel degree `d`, the `n_mubatches`
//! microbatches below would be the *global* batch with each replica
//! executing its contiguous `1/d` slice — batch-sharded throughput DP,
//! not replicated copies of the same batch.
//!
//! Run with: `cargo run --release -p raxpp-examples --bin train_transformer`

use raxpp_core::{compile_train_step, CompileOptions, Optimizer};
use raxpp_models::{lm_batches, tiny_lm, SyntheticTask, TinyLmConfig};
use raxpp_sched::interleaved_1f1b;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TinyLmConfig {
        seq: 12,
        vocab: 12,
        emb: 24,
        ffn: 48,
        blocks: 8,
        heads: 4,
        n_stages: 8, // 8 stages over 4 actors = circular repeat 2
        tied_embeddings: true,
    };
    let n_mubatches = 8;
    let schedule = interleaved_1f1b(4, n_mubatches, 2)?;
    println!("schedule: {}", schedule.name());

    let model = tiny_lm(cfg, 7)?;
    println!(
        "model: {} params, 4-head attention, {} stages (embedding tied to the LM head: \
         stage 0 and stage {} share a weight — paper §3.4)",
        model.n_params,
        cfg.n_stages,
        cfg.n_stages - 1
    );

    let trainer = compile_train_step(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::adam(3e-3),
        CompileOptions::default(),
    )?;
    trainer.init(&model.init)?;

    // Synthetic dataset: cyclic token sequences with different offsets.
    let data = lm_batches(
        &cfg,
        SyntheticTask::CyclicNext { stride: 2 },
        n_mubatches,
        0,
    );

    let tokens_per_step = (cfg.seq * n_mubatches) as f64;
    println!(
        "uniform-guessing loss would be ln({}) = {:.3}\n",
        cfg.vocab,
        (cfg.vocab as f32).ln()
    );
    for step in 1..=60 {
        let r = trainer.step(&data)?;
        if step % 5 == 0 || step == 1 {
            let tput = tokens_per_step / r.stats.wall.as_secs_f64();
            println!(
                "step {step:3}: mean loss {:.4}   ({:>8.0} interpreter-tokens/s, {} RPCs)",
                r.mean_loss, tput, r.stats.rpcs
            );
        }
    }
    Ok(())
}
