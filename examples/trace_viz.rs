//! Trace a real 4-stage GPipe training step and export it next to the
//! simulator's predicted timeline for the same schedule.
//!
//! Produces two Chrome-trace JSON files (load either at
//! <https://ui.perfetto.dev> or `chrome://tracing`):
//!
//! * `target/trace_step.json` — the measured per-instruction timeline
//!   (one track per actor; `recv` spans are the pipeline bubble),
//! * `target/trace_predicted.json` — the uniform-cost simulator's
//!   prediction under task durations derived from the measured trace,
//!
//! and prints the `bubble_report()` diff of measured vs predicted
//! per-stage idle time. See `docs/observability.md` for how to read the
//! trace.
//!
//! Run with: `cargo run --release -p raxpp-examples --bin trace_viz`

use std::fs;

use raxpp_core::{CompileOptions, Optimizer, RemoteMesh};
use raxpp_ir::rng::{SeedableRng, StdRng};
use raxpp_ir::Tensor;
use raxpp_models::mlp_chain;
use raxpp_sched::{gpipe, simulate, UniformCost};
use raxpp_simcluster::predicted_chrome_trace_json;

const STAGES: usize = 4;
const N_MB: usize = 4;
const WIDTH: usize = 128;
const BATCH: usize = 32;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 4-stage, 8-layer MLP under GPipe with 4 microbatches.
    let model = mlp_chain(WIDTH, BATCH, 2 * STAGES, STAGES, 7)?;
    let schedule = gpipe(STAGES, N_MB)?;
    let mesh = RemoteMesh::new(STAGES, (1, 1));
    let trainer = mesh.distributed(
        &model.jaxpr,
        model.n_params,
        &schedule,
        Optimizer::Sgd { lr: 0.01 },
        CompileOptions::default(),
    )?;
    trainer.init(&model.init)?;
    let mut rng = StdRng::seed_from_u64(42);
    let data: Vec<Vec<Tensor>> = vec![(0..N_MB)
        .map(|_| Tensor::randn([BATCH, WIDTH], 1.0, &mut rng))
        .collect()];

    // Warm up (first-touch allocations, thread-pool spin-up), then trace
    // one steady-state step.
    for _ in 0..2 {
        trainer.step(&data)?;
    }
    let (result, trace) = trainer.step_traced(&data)?;
    println!(
        "traced step: loss {:.4}, {} spans across {} actors",
        result.mean_loss,
        trace.span_count(),
        trace.actors.len()
    );

    fs::create_dir_all("target")?;
    let measured_path = "target/trace_step.json";
    fs::write(measured_path, trace.chrome_trace_json())?;
    println!("wrote {measured_path} (load in Perfetto / chrome://tracing)");

    // The simulator's prediction for the same schedule, under per-task
    // durations taken from the measured trace — the same cost model
    // bubble_report() diffs against.
    let report = trainer.bubble_report(&trace);
    let median_kind = |kind: &str| -> f64 {
        let mut durs: Vec<f64> = trace
            .actors
            .iter()
            .flat_map(|a| a.spans.iter())
            .filter(|s| s.kind == kind)
            .map(|s| s.dur_ns as f64 / 1e9)
            .collect();
        durs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        durs.get(durs.len() / 2).copied().unwrap_or(0.0)
    };
    let fwd = median_kind("fwd");
    let cost = UniformCost {
        fwd,
        bwd: median_kind("bwd").max(fwd),
        wgrad: 0.0,
        p2p: 0.0,
    };
    let sim = simulate(&schedule, cost)?;
    let predicted_path = "target/trace_predicted.json";
    fs::write(predicted_path, predicted_chrome_trace_json(&sim))?;
    println!("wrote {predicted_path} (same schema; diff against the measured trace)");

    println!("\n{report}");
    println!("metrics after {} steps:\n{}", 3, trainer.metrics().render());
    Ok(())
}
