#!/usr/bin/env bash
# Doc cross-reference check: every repo-relative path mentioned in the
# README and docs/ (markdown links, backticked *.md / *.rs / *.sh
# paths) must exist, and the docs that are supposed to cross-link each
# other actually do. Pure grep — no external tools.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
    echo "check_doc_links: $1" >&2
    fail=1
}

docs=(README.md docs/*.md)

# Strips fenced code blocks (``` … ```), whose contents are not links.
prose() {
    awk '/^[[:space:]]*```/ { inblock = !inblock; next } !inblock' "$1"
}

# 1. Markdown links [text](target): every non-URL target must exist
#    relative to the linking file's directory (anchors stripped).
for f in "${docs[@]}"; do
    dir=$(dirname "$f")
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            err "$f: broken link target '$target'"
        fi
    done < <(prose "$f" | grep -o '\[[^]]*\]([^)]*)' |
        sed 's/.*(\([^)]*\))/\1/' || true)
done

# 2. Backticked repo paths like `docs/observability.md`,
#    `crates/runtime/tests/trace_schema.rs`, `scripts/verify.sh`.
for f in "${docs[@]}"; do
    while IFS= read -r path; do
        # Strip a trailing ::item qualifier (`file.rs::test_name`).
        path="${path%%::*}"
        if [ ! -e "$path" ]; then
            err "$f: references missing file '$path'"
        fi
    done < <(prose "$f" |
        grep -o '`[A-Za-z0-9_./-]*\.\(md\|rs\|sh\|toml\)\(::[A-Za-z0-9_:]*\)\?`' |
        tr -d '`' | grep '^[A-Za-z0-9_]*/' || true)
done

# 3. Anchor links `file.md#section` / `#section`: the anchor must match
#    a real heading of the target file after GitHub slugging (lowercase,
#    punctuation stripped, spaces become dashes).
slugs() { # file -> one heading slug per line
    prose "$1" | grep '^#\{1,6\} ' | sed 's/^#\{1,6\} //' |
        tr '[:upper:]' '[:lower:]' | sed 's/[^a-z0-9 _-]//g; s/ /-/g'
}
for f in "${docs[@]}"; do
    dir=$(dirname "$f")
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        esac
        case "$target" in
        *'#'*) ;;
        *) continue ;;
        esac
        path="${target%%#*}"
        anchor="${target#*#}"
        if [ -z "$path" ]; then
            dest="$f"
        elif [ -e "$dir/$path" ]; then
            dest="$dir/$path"
        elif [ -e "$path" ]; then
            dest="$path"
        else
            continue # section 1 already flagged the missing file
        fi
        if ! slugs "$dest" | grep -qx "$anchor"; then
            err "$f: dangling anchor '#$anchor' (no such section in $dest)"
        fi
    done < <(prose "$f" | grep -o '\[[^]]*\]([^)]*)' |
        sed 's/.*(\([^)]*\))/\1/' || true)
done

# 4. Required cross-references: the docs overhaul promises these links.
require() { # file pattern description
    grep -q "$2" "$1" || err "$1: missing expected reference to $3"
}
require README.md 'docs/observability\.md' 'docs/observability.md'
require README.md 'docs/ARCHITECTURE\.md' 'docs/ARCHITECTURE.md'
require README.md 'docs/execution-backend\.md' 'docs/execution-backend.md'
require docs/execution-backend.md 'docs/observability\.md' 'docs/observability.md'
require docs/ARCHITECTURE.md 'docs/observability\.md' 'docs/observability.md'
require docs/observability.md 'RAXPP_TRACE' 'the RAXPP_TRACE env var'
require README.md 'docs/parallelism\.md' 'docs/parallelism.md'
require docs/parallelism.md 'docs/ARCHITECTURE\.md' 'docs/ARCHITECTURE.md'
require docs/parallelism.md 'docs/resilience\.md' 'docs/resilience.md'
require docs/parallelism.md 'docs/observability\.md' 'docs/observability.md'
require docs/ARCHITECTURE.md 'docs/parallelism\.md' 'docs/parallelism.md'
require docs/resilience.md 'docs/parallelism\.md' 'docs/parallelism.md'
require docs/observability.md 'docs/parallelism\.md' 'docs/parallelism.md'
require README.md 'docs/determinism\.md' 'docs/determinism.md'
require docs/parallelism.md 'docs/determinism\.md' 'docs/determinism.md'
require docs/ARCHITECTURE.md 'docs/determinism\.md' 'docs/determinism.md'
require docs/resilience.md 'docs/determinism\.md' 'docs/determinism.md'
require docs/determinism.md 'docs/parallelism\.md' 'docs/parallelism.md'
require docs/determinism.md 'docs/execution-backend\.md' 'docs/execution-backend.md'
require docs/determinism.md 'docs/resilience\.md' 'docs/resilience.md'
require README.md 'docs/serving\.md' 'docs/serving.md'
require docs/ARCHITECTURE.md 'docs/serving\.md' 'docs/serving.md'
require docs/observability.md 'docs/serving\.md' 'docs/serving.md'
require docs/resilience.md 'docs/serving\.md' 'docs/serving.md'
require docs/serving.md 'docs/observability\.md' 'docs/observability.md'
require docs/serving.md 'docs/resilience\.md' 'docs/resilience.md'
require docs/serving.md 'docs/determinism\.md' 'docs/determinism.md'

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "check_doc_links: OK"
