#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, format
# check, clippy (warnings are errors), rustdoc (warnings are errors),
# and doc cross-reference check. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --doc (markdown guides compile as doctests)"
cargo test --doc --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> doc link check"
scripts/check_doc_links.sh

echo "==> quick step_time bench (bitwise parity + tp_speedup regression gate)"
# Snapshot the committed tp_speedup BEFORE the run so a quick run can
# never compare against itself; the quick bench writes to a scratch
# file, leaving the committed full-run BENCH_step.json untouched.
COMMITTED_TP_SPEEDUP=$(python3 -c '
import json
print(json.load(open("BENCH_step.json"))["tp_speedup"])
')
QUICK_OUT=$(mktemp /tmp/raxpp_bench_quick.XXXXXX.json)
RAXPP_BENCH_QUICK=1 RAXPP_BENCH_OUT="$QUICK_OUT" \
    cargo bench -p raxpp-bench --bench step_time
python3 - "$QUICK_OUT" "$COMMITTED_TP_SPEEDUP" <<'PY'
import json, sys
quick = json.load(open(sys.argv[1]))
committed = float(sys.argv[2])
tp = quick["tensor_parallel"]
assert tp["bitwise_parity"] is True, "quick bench: tp bitwise parity broken"
got = float(quick["tp_speedup"])
# Quick runs are short and, on a core-starved box, noisy (observed
# 0.53-0.66 against a committed 0.71 on 1 core): the floor is a coarse
# catastrophic-regression gate — e.g. the serialized per-rank ring walk
# coming back — not a tight perf assertion; the committed number comes
# from the full run.
floor = 0.6 * committed
assert got >= floor, (
    f"tp_speedup regression: quick run {got:.4f} < 0.6 x committed "
    f"{committed:.4f} (= {floor:.4f})"
)
print(f"quick bench OK: bitwise_parity=true, tp_speedup {got:.4f} "
      f">= 0.6 x committed {committed:.4f}")
PY
rm -f "$QUICK_OUT"

echo "verify: OK"
