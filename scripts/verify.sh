#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, format
# check, clippy (warnings are errors), rustdoc (warnings are errors),
# and doc cross-reference check. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --doc (markdown guides compile as doctests)"
cargo test --doc --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> doc link check"
scripts/check_doc_links.sh

echo "==> rebalance-under-TP regression (folds must stay bitwise, not refused)"
cargo test -q -p raxpp-integration --test tensor_parallel tp_rebalance_folds_bitwise

echo "==> socket-transport gate (resilience suites over the wire, bounded time)"
# The same failure/chaos/rebalance/checkpoint contracts must hold
# bitwise when every actor fabric message crosses a Unix-domain
# socket. The per-test watchdog (RAXPP_TEST_TIMEOUT_SECS) turns any
# wire deadlock into a fast named failure rather than a hung gate.
RAXPP_TRANSPORT=socket RAXPP_TEST_TIMEOUT_SECS=120 cargo test -q -p raxpp-integration \
    --test failure_semantics \
    --test chaos_soak \
    --test elastic_rebalance \
    --test checkpointing \
    --test determinism_guard \
    --test serving

echo "==> quick step_time bench (tp bitwise parity, dp batch-sharding gates)"
# Snapshot the committed tp_speedup BEFORE the run so a quick run can
# never compare against itself; the quick bench writes to a scratch
# file, leaving the committed full-run BENCH_step.json untouched.
COMMITTED_TP_SPEEDUP=$(python3 -c '
import json
print(json.load(open("BENCH_step.json"))["tp_speedup"])
')
QUICK_OUT=$(mktemp /tmp/raxpp_bench_quick.XXXXXX.json)
RAXPP_BENCH_QUICK=1 RAXPP_BENCH_OUT="$QUICK_OUT" \
    cargo bench -p raxpp-bench --bench step_time
python3 - "$QUICK_OUT" "$COMMITTED_TP_SPEEDUP" <<'PY'
import json, sys
quick = json.load(open(sys.argv[1]))
committed = float(sys.argv[2])
tp = quick["tensor_parallel"]
assert tp["bitwise_parity"] is True, "quick bench: tp bitwise parity broken"
dp = quick["data_parallel"]
assert dp["bitwise_parity"] is True, \
    "quick bench: dp step-0 bitwise parity broken"
assert dp["dp_collectives_per_run"] > 0, \
    "quick bench: dp=2 run executed no DP collectives"
cores = int(quick["available_cores"])

# Throughput-DP gate. Accounting always holds: the replicas partition
# the 4-microbatch global batch exactly (the bench span-asserts that
# every actor ran its N/d forward tasks; here we pin the JSON record).
dp_replicas = int(dp["replicas"])
mpr = int(dp["microbatches_per_replica"])
assert mpr * dp_replicas == 4, (
    f"dp batch sharding broken: {dp_replicas} replicas x {mpr} "
    f"microbatches/replica != 4 global microbatches"
)
if cores >= 4 * dp_replicas:
    # Enough cores for both replica pipelines to genuinely overlap:
    # halving each replica's microbatch count over the same global
    # batch must buy real per-sample throughput.
    dp_speedup = float(quick["dp_speedup"])
    assert dp_speedup >= 1.3, (
        f"dp_speedup regression: {dp_speedup:.2f} < 1.3 on a "
        f"{cores}-core box — batch sharding is not buying throughput"
    )
    print(f"dp gate OK: {mpr} microbatches/replica, "
          f"dp_speedup {dp_speedup:.2f} >= 1.3")
else:
    # Core-starved box (same rationale as the TP fallback below): the
    # 2*STAGES replica actors time-slice too few CPUs, so wall-time
    # ratios measure scheduler noise. The microbatch accounting above
    # is the meaningful gate there.
    print(f"dp gate OK ({cores} cores < {4 * dp_replicas}: speedup floor "
          f"skipped): {mpr} microbatches/replica x {dp_replicas} replicas")
tp_degree = int(tp["degree"])
if cores < 2 * tp_degree:
    # Core-starved box: tp=2's eight shard actors time-slice too few
    # CPUs, so wall-time ratios measure scheduler noise, not the shard
    # lanes (observed quick tp_speedup 0.4-0.7 on 1 core for identical
    # code). Gate on what IS meaningful there: bitwise parity (above)
    # and the compute/communication overlap the lanes exist to provide.
    overlap = float(tp["overlap_ratio"])
    assert overlap >= 0.5, (
        f"tp overlap_ratio regression: quick run {overlap:.2f} < 0.5 — "
        f"shard lanes are no longer overlapping collectives with compute"
    )
    print(f"quick bench OK ({cores} cores < 2*tp={2 * tp_degree}: speedup "
          f"floor skipped): tp/dp bitwise_parity=true, "
          f"overlap_ratio {overlap:.2f} >= 0.5, "
          f"dp_collectives {int(dp['dp_collectives_per_run'])}")
else:
    got = float(quick["tp_speedup"])
    # Quick runs are short and noisy: the floor is a coarse
    # catastrophic-regression gate — e.g. the serialized per-rank ring
    # walk coming back — not a tight perf assertion; the committed
    # number comes from the full run.
    floor = 0.6 * committed
    assert got >= floor, (
        f"tp_speedup regression: quick run {got:.4f} < 0.6 x committed "
        f"{committed:.4f} (= {floor:.4f})"
    )
    print(f"quick bench OK: tp/dp bitwise_parity=true, tp_speedup "
          f"{got:.4f} >= 0.6 x committed {committed:.4f}")
PY
rm -f "$QUICK_OUT"

echo "==> quick serve bench (bitwise parity vs unbatched forward, bounded p99)"
# Closed-loop load through the continuous-batching engine; quick mode
# writes to a scratch file, leaving the committed full-run
# BENCH_serve.json untouched.
SERVE_OUT=$(mktemp /tmp/raxpp_bench_serve.XXXXXX.json)
RAXPP_BENCH_QUICK=1 RAXPP_BENCH_OUT="$SERVE_OUT" \
    cargo bench -p raxpp-bench --bench serve
python3 - "$SERVE_OUT" <<'PY'
import json, sys
quick = json.load(open(sys.argv[1]))
assert quick["bitwise_parity"] is True, \
    "quick serve bench: served probe diverges from the unbatched forward"
for c in quick["curves"]:
    n, p50, p99 = int(c["n_slots"]), float(c["p50_us"]), float(c["p99_us"])
    assert c["bitwise_parity"] is True, f"serve parity broken at n_slots={n}"
    # Bounded-latency gate: a lost ticket or an unanswered dispatch
    # shows up as an unbounded tail. The floor term absorbs scheduler
    # noise on tiny quick-run samples; the ratio catches a tail that
    # detached from the median; the absolute ceiling catches a stuck
    # reply outright.
    assert p99 <= max(10_000.0, 30.0 * p50), (
        f"serve p99 unbounded at n_slots={n}: p99 {p99:.0f}us vs p50 {p50:.0f}us")
    assert p99 <= 2_000_000.0, (
        f"serve p99 absurd at n_slots={n}: {p99:.0f}us — replies are stalling")
print("serve gate OK: bitwise parity across slot counts, p99 bounded "
      + ", ".join(f"{int(c['n_slots'])}slots={float(c['p99_us'])/1000:.2f}ms"
                  for c in quick["curves"]))
PY
rm -f "$SERVE_OUT"

echo "verify: OK"
