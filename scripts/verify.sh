#!/usr/bin/env bash
# Tier-1 verification gate: release build, full test suite, format
# check, clippy (warnings are errors), rustdoc (warnings are errors),
# and doc cross-reference check. Run from anywhere inside the repo.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test --doc (markdown guides compile as doctests)"
cargo test --doc --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace -q

echo "==> doc link check"
scripts/check_doc_links.sh

echo "verify: OK"
